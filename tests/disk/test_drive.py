"""Integration tests for the Disk drive model."""

import pytest

from repro.disk import Disk, DiskGeometry, DiskParameters
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def disk(eng):
    return Disk(eng)


def run_io(eng, disk, lbn, nsectors, is_write, data=None):
    def op():
        service = yield from disk.service(lbn, nsectors, is_write, data)
        return service

    return eng.run_until(eng.process(op()))


def test_write_persists_to_storage(eng, disk):
    data = b"\x5a" * 512
    run_io(eng, disk, 42, 1, True, data)
    assert disk.storage.read(42) == data


def test_read_returns_no_data_but_caches(eng, disk):
    run_io(eng, disk, 42, 4, False)
    assert disk.cache.lookup(42, 4)


def test_service_time_within_mechanical_bounds(eng, disk):
    service = run_io(eng, disk, 500_000, 16, True, b"\x00" * (16 * 512))
    params, geo = disk.params, disk.geometry
    minimum = params.controller_overhead + params.transfer_time(geo, 16)
    maximum = (params.controller_overhead + params.seek_time(0, geo.cylinders)
               + params.rotation_time + params.transfer_time(geo, 16))
    assert minimum <= service <= maximum


def test_cache_hit_read_much_faster_than_media_read(eng, disk):
    first = run_io(eng, disk, 10_000, 8, False)
    second = run_io(eng, disk, 10_000, 8, False)
    assert second < first / 3
    assert disk.stats.cache_hit_reads == 1


def test_sequential_reads_hit_prefetch(eng, disk):
    run_io(eng, disk, 1000, 8, False)
    follow_on = run_io(eng, disk, 1008, 8, False)
    params, geo = disk.params, disk.geometry
    assert follow_on < params.controller_overhead + params.bus_time(geo, 8) + 1e-9


def test_write_invalidates_onboard_cache(eng, disk):
    run_io(eng, disk, 1000, 8, False)
    run_io(eng, disk, 1002, 1, True, b"\xff" * 512)
    assert not disk.cache.lookup(1000, 8)


def test_same_cylinder_access_cheaper_than_far_seek(eng, disk):
    run_io(eng, disk, 0, 1, True, b"\x00" * 512)
    near = run_io(eng, disk, 4, 1, True, b"\x00" * 512)
    # re-home then long seek
    disk._current_cylinder = 0
    far = run_io(eng, disk, disk.geometry.total_sectors - 100, 1, True,
                 b"\x00" * 512)
    assert near < far


def test_instant_mode_is_free_and_persistent(eng, disk):
    disk.instant = True
    service = run_io(eng, disk, 9, 1, True, b"\x77" * 512)
    assert service == 0.0
    assert eng.now == 0.0
    assert disk.storage.read(9) == b"\x77" * 512


def test_write_without_data_rejected(eng, disk):
    with pytest.raises(Exception):
        run_io(eng, disk, 0, 1, True, None)


def test_wrong_size_data_rejected(eng, disk):
    with pytest.raises(Exception):
        run_io(eng, disk, 0, 2, True, b"\x00" * 512)


def test_stats_accumulate(eng, disk):
    run_io(eng, disk, 0, 1, True, b"\x00" * 512)
    run_io(eng, disk, 100, 2, False)
    assert disk.stats.writes == 1
    assert disk.stats.reads == 1
    assert disk.stats.sectors_written == 1
    assert disk.stats.sectors_read == 2
    assert disk.stats.busy_time > 0
    assert len(disk.stats.service_times) == 2


def test_in_flight_exposed_during_write_transfer(eng, disk):
    observed = []

    def op():
        yield from disk.service(0, 72, True, b"\x01" * (72 * 512))

    def spy():
        # sample mid-way through the (at least one revolution) transfer
        yield eng.timeout(disk.params.controller_overhead
                          + disk.params.rotation_time * 1.2)
        observed.append(disk.in_flight)

    writer = eng.process(op())
    eng.process(spy())
    eng.run_until(writer)
    assert disk.in_flight is None
    assert observed and observed[0] is not None
    applied = observed[0].sectors_applied_by(
        observed[0].transfer_start + 10 * observed[0].sector_period, 512)
    assert applied == 10


def test_service_time_stats_stream_without_retaining_samples(eng, disk):
    """Regression: service times aggregate in O(1) memory by default."""
    for index in range(50):
        run_io(eng, disk, index * 16, 1, True, b"\x00" * 512)
    stats = disk.stats.service_times
    assert len(stats) == stats.count == 50
    assert stats.min <= stats.mean <= stats.max
    assert abs(stats.total - stats.mean * 50) < 1e-9
    # no reservoir configured: not one sample retained
    assert stats.samples == []


def test_service_time_reservoir_is_bounded():
    from repro.disk.drive import ServiceTimeStats

    stats = ServiceTimeStats(reservoir_limit=8)
    for value in range(100):
        stats.append(float(value))
    assert stats.count == 100 and len(stats) == 100
    assert len(stats.samples) == 8
    assert stats.samples == [float(v) for v in range(92, 100)]
    assert stats.min == 0.0 and stats.max == 99.0


def test_started_counters_match_completions_when_fault_free(eng, disk):
    run_io(eng, disk, 0, 1, True, b"\x00" * 512)
    run_io(eng, disk, 100, 2, False)
    assert disk.stats.writes_started == disk.stats.writes == 1
    assert disk.stats.reads_started == disk.stats.reads == 1
    assert disk.stats.aborted_reads == disk.stats.aborted_writes == 0
    assert disk.stats.read_faults == disk.stats.write_faults == 0


def test_faulted_operations_counted_separately(eng, disk):
    from repro.faults import FaultPlan

    disk.faults = FaultPlan(seed=1, transient_write_rate=1.0).build()
    # the raw drive has no retry loop: the fault consumes service time,
    # leaves sense data for the driver, and completes nothing
    run_io(eng, disk, 0, 1, True, b"\x00" * 512)
    assert disk.stats.writes_started == 1
    assert disk.stats.writes == 0          # never completed
    assert disk.stats.write_faults == 1
    assert disk.stats.sectors_written == 0
    assert disk.sense is not None and disk.sense.code == "transient"
