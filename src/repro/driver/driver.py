"""The device driver: queue, C-LOOK elevator, concatenation, tracing.

Matches the paper's base system (section 2): "The scheduling code in the
device driver concatenates sequential requests" and no command queueing at
the disk -- the driver dispatches one (possibly concatenated) operation at a
time and schedules the rest while the drive works.

Every completed request is appended to ``trace`` with issue/dispatch/complete
timestamps, mirroring the paper's instrumented driver (their 4 MB trace
buffer); ``repro.harness.metrics`` summarises the trace into the statistics
the tables and figures report.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Engine
from repro.sim.primitives import WaitQueue
from repro.disk.drive import Disk
from repro.driver.ordering import OrderingPolicy
from repro.driver.request import DiskRequest, IOKind


class DeviceDriver:
    """Queues requests, enforces ordering policy, drives the disk."""

    def __init__(self, engine: Engine, disk: Disk, policy: OrderingPolicy,
                 max_batch_sectors: int = 128) -> None:
        self.engine = engine
        self.disk = disk
        self.policy = policy
        self.max_batch_sectors = max_batch_sectors
        # issue-ordered (dicts preserve insertion order); keyed by id so
        # dispatch removal is O(1) even with thousands queued
        self._pending: dict[int, DiskRequest] = {}
        self._work = WaitQueue(engine)
        self._next_id = 0
        self._head_lbn = 0
        # Overlapping writes must reach the media in issue order no matter
        # what the ordering policy allows (a driver invariant: with the -CB
        # block-copy enhancement or freed-block reuse, two in-queue writes
        # can cover the same sectors, and dispatching the younger one first
        # would let stale bytes land last).  sector -> ids in issue order.
        self._write_fifo: dict[int, list[int]] = {}
        #: completed requests, in completion order
        self.trace: list[DiskRequest] = []
        self.requests_issued = 0
        self._process = engine.process(self._run(), name="disk-driver")

    # -- public API -------------------------------------------------------
    def issue(self, kind: IOKind, lbn: int, nsectors: int,
              data: Optional[bytes] = None, flag: bool = False,
              depends_on: Optional[frozenset[int]] = None,
              issuer: str = "") -> DiskRequest:
        """Create and enqueue a request; returns it immediately.

        The caller decides whether to wait: ``yield request.done`` makes the
        write synchronous from the issuing process's point of view.
        """
        self._next_id += 1
        request = DiskRequest(self.engine, self._next_id, kind, lbn, nsectors,
                              data=data, flag=flag, depends_on=depends_on,
                              issuer=issuer)
        request.issue_time = self.engine.now
        if request.is_write:
            for sector in range(request.lbn, request.end_lbn):
                self._write_fifo.setdefault(sector, []).append(request.id)
        self.policy.on_issue(request)
        self._pending[request.id] = request
        self.requests_issued += 1
        # broadcast, not signal: both the dispatch loop and any drain()
        # waiters sleep on the same queue and must all re-check
        self._work.broadcast()
        return request

    def read(self, lbn: int, nsectors: int, issuer: str = "") -> DiskRequest:
        """Issue a read request (convenience wrapper over :meth:`issue`)."""
        return self.issue(IOKind.READ, lbn, nsectors, issuer=issuer)

    def write(self, lbn: int, data: bytes, flag: bool = False,
              depends_on: Optional[frozenset[int]] = None,
              issuer: str = "") -> DiskRequest:
        """Issue a write request (convenience wrapper over :meth:`issue`)."""
        nsectors = len(data) // self.disk.geometry.sector_size
        return self.issue(IOKind.WRITE, lbn, nsectors, data=data, flag=flag,
                          depends_on=depends_on, issuer=issuer)

    @property
    def queue_depth(self) -> int:
        """Requests waiting in the driver queue (excludes the one in flight)."""
        return len(self._pending)

    @property
    def last_issued_id(self) -> int:
        """Id of the most recently issued request (0 if none yet)."""
        return self._next_id

    @property
    def idle(self) -> bool:
        """True when nothing is queued and nothing is at the drive."""
        return not self._pending and not self._in_flight

    def drain(self):
        """Subroutine: wait until the driver queue is empty and disk idle.

        Usable from simulated processes: ``yield from driver.drain()``.
        """
        while self._pending or self._in_flight:
            yield self._idle_check_event()

    def _idle_check_event(self):
        # piggyback on completion signals: wake on next completion
        return self._work.wait()

    # -- the dispatch loop -------------------------------------------------
    _in_flight: bool = False

    def _run(self):
        while True:
            batch = self._select_batch()
            if batch is None:
                yield self._work.wait()
                continue
            now = self.engine.now
            for request in batch:
                request.dispatch_time = now
                del self._pending[request.id]
            self._in_flight = True
            first = batch[0]
            total_sectors = sum(r.nsectors for r in batch)
            if first.is_write:
                data = b"".join(r.data for r in batch)
                yield from self.disk.service(first.lbn, total_sectors, True, data)
            else:
                yield from self.disk.service(first.lbn, total_sectors, False)
            self._in_flight = False
            self._head_lbn = first.lbn + total_sectors
            done_at = self.engine.now
            for request in batch:
                request.complete_time = done_at
                # the payload is on the platters now; keeping it would make
                # the trace hold the whole workload's bytes (paper-scale
                # runs move hundreds of MB)
                request.data = None
                if request.is_write:
                    for sector in range(request.lbn, request.end_lbn):
                        ids = self._write_fifo[sector]
                        ids.remove(request.id)
                        if not ids:
                            del self._write_fifo[sector]
                self.policy.on_complete(request)
                self.trace.append(request)
            # completion callbacks run after *all* policy bookkeeping so a
            # callback that issues new I/O sees a consistent policy state
            for request in batch:
                for callback in request.on_complete:
                    callback(request)
                # release the callbacks too: their closures reference cache
                # buffers, and the trace keeps requests for the whole run
                request.on_complete = []
                request.done.succeed(request)
            # wake anyone waiting for queue drain / eligibility changes
            self._work.broadcast()

    # -- selection ----------------------------------------------------------
    def _select_batch(self) -> Optional[list[DiskRequest]]:
        """Pick the next dispatch: C-LOOK among eligible, then concatenate."""
        eligible = []
        writes_blocked = False
        monotone = getattr(self.policy, "monotone_writes", False)
        for request in self._pending.values():  # issue order
            if request.is_write:
                if writes_blocked:
                    continue
                if not self._write_fifo_ok(request):
                    continue  # the same-sector FIFO holds only this request
                if self.policy.may_dispatch(request):
                    eligible.append(request)
                elif monotone:
                    # under flag semantics write eligibility is monotone in
                    # issue order: once one write is held by the policy, all
                    # later writes are too -- stop scanning them (held-back
                    # queues reach thousands of requests)
                    writes_blocked = True
            else:
                if self._write_fifo_ok(request) \
                        and self.policy.may_dispatch(request):
                    eligible.append(request)
        if not eligible:
            return None
        ahead = [r for r in eligible if r.lbn >= self._head_lbn]
        pool = ahead or eligible
        chosen = min(pool, key=lambda r: (r.lbn, r.id))
        return self._concatenate(chosen, eligible)

    def _write_fifo_ok(self, request: DiskRequest) -> bool:
        """True unless an older incomplete write overlaps this write."""
        if not request.is_write:
            return True
        return all(self._write_fifo[sector][0] == request.id
                   for sector in range(request.lbn, request.end_lbn))

    def _concatenate(self, chosen: DiskRequest,
                     eligible: list[DiskRequest]) -> list[DiskRequest]:
        """Merge LBN-contiguous, same-direction eligible requests."""
        same_kind = {}
        for request in eligible:
            if request.kind is chosen.kind and request is not chosen:
                # first-issued wins if two requests target the same LBN
                same_kind.setdefault(request.lbn, request)
        batch = [chosen]
        total = chosen.nsectors
        # extend forward
        cursor = chosen.end_lbn
        while total < self.max_batch_sectors and cursor in same_kind:
            nxt = same_kind.pop(cursor)
            batch.append(nxt)
            total += nxt.nsectors
            cursor = nxt.end_lbn
        # extend backward
        by_end = {r.end_lbn: r for r in same_kind.values()}
        cursor = batch[0].lbn
        while total < self.max_batch_sectors and cursor in by_end:
            prev = by_end.pop(cursor)
            batch.insert(0, prev)
            total += prev.nsectors
            cursor = prev.lbn
        return batch
