"""Kernel throughput: the swappable fast kernel against the reference.

Two checks ride on one grid:

* **throughput** -- a timer-churn microbenchmark (the event-loop-bound
  shape: waves of mass ``call_later`` schedules drained back-to-back,
  with a C-level no-op callback so kernel dispatch dominates) timed under
  each registered kernel.  The fast kernel must deliver at least 3x the
  reference's events/sec when numpy vectorizes its batch sorts
  (best-of-``REPEATS``, so one host-scheduler hiccup cannot fail the run).
* **equivalence** -- a real copy-benchmark cell run under each kernel
  must produce byte-identical table rows (simulated seconds, request
  counts, response times): kernels trade host wall clock only, which is
  the same contract the conformance suite proves at unit scale.

The per-cell wall clock and events/sec land in ``BENCH_perf.json`` via the
usual grid reporting (each cell's record carries its kernel name), so the
speedup is part of the recorded performance trajectory.
"""

import time
from dataclasses import dataclass, field, replace

from repro.harness.report import format_table
from repro.harness.runner import run_copy, standard_scheme_config
from repro.sim import KERNELS, FastKernel
from repro.workloads.trees import TreeSpec

from benchmarks.conftest import SCALE, emit, run_grid, scaled_cache

#: timer-churn shape: WAVES waves of TIMERS schedules, drained per wave
TIMERS = 200_000
WAVES = 4
REPEATS = 3

#: the reference kernel every other one is measured against
REFERENCE = "python"


@dataclass
class ChurnResult:
    """One kernel's timer-churn measurement (all repeats)."""

    kernel: str
    sim_events: int = 0
    wall_seconds: float = 0.0
    #: best single-repeat events/sec (the noise-resistant figure)
    best_events_per_second: float = 0.0
    perf_extra: dict = field(default_factory=dict)


def timer_churn(kernel: str) -> ChurnResult:
    from repro.sim import Engine  # local: the cell may run in a fork worker

    result = ChurnResult(kernel=kernel)
    for _ in range(REPEATS):
        engine = Engine(kernel=kernel)
        start = time.perf_counter()
        for _wave in range(WAVES):
            for index in range(TIMERS):
                engine.call_later((index % 997) * 1e-6, int)
            engine.run()
        wall = time.perf_counter() - start
        events = engine.events_processed
        result.sim_events += events
        result.wall_seconds += wall
        result.best_events_per_second = max(
            result.best_events_per_second, events / wall)
    result.perf_extra = {
        "kernel": kernel,
        "best_events_per_second": round(result.best_events_per_second),
    }
    return result


def copy_cell(kernel: str):
    config = replace(standard_scheme_config("Soft Updates",
                                            cache_bytes=scaled_cache()),
                     kernel=kernel)
    tree = TreeSpec().scaled(min(SCALE, 0.15))
    result = run_copy(config, users=2, tree=tree)
    result.perf_extra = {"kernel": kernel}
    return result


def copy_row(result) -> str:
    """The deterministic (simulated-only) slice of a copy result."""
    return repr((result.elapsed, result.cpu_time, result.disk_requests,
                 round(result.io_response_avg * 1000, 9),
                 result.sim_events))


def test_kernel_throughput(once):
    kernels = sorted(KERNELS)

    def experiment():
        cells = ([(("churn", kernel), lambda k=kernel: timer_churn(k))
                  for kernel in kernels]
                 + [(("copy", kernel), lambda k=kernel: copy_cell(k))
                    for kernel in kernels])
        # timing cells must not overlap on a shared core
        return run_grid("kernel_throughput", cells, jobs=1)

    results = once(experiment)

    churn = {kernel: results[("churn", kernel)] for kernel in kernels}
    copies = {kernel: results[("copy", kernel)] for kernel in kernels}
    ref = churn[REFERENCE]

    rows = []
    for kernel in kernels:
        r = churn[kernel]
        rows.append([kernel, r.sim_events, round(r.wall_seconds, 2),
                     round(r.sim_events / r.wall_seconds),
                     round(r.best_events_per_second),
                     round(r.best_events_per_second
                           / ref.best_events_per_second, 2)])
    emit("kernel_throughput", format_table(
        f"Event-loop kernel throughput (timer churn, {WAVES}x{TIMERS} "
        f"timers, best of {REPEATS}; host wall clock)",
        ["Kernel", "Events", "Wall (s)", "Events/s (avg)", "Events/s (best)",
         f"Speedup vs {REFERENCE}"], rows))

    # every kernel ran the identical simulation...
    for kernel in kernels:
        assert churn[kernel].sim_events == ref.sim_events
        assert copy_row(copies[kernel]) == copy_row(copies[REFERENCE]), \
            f"kernel {kernel!r} changed the simulation"

    # ...and the fast kernel is actually fast (the vectorized batch path;
    # the pure-python fallback still wins, but by a host-dependent margin)
    if FastKernel.vectorized:
        ratio = (churn["fast"].best_events_per_second
                 / ref.best_events_per_second)
        assert ratio >= 3.0, f"fast kernel only {ratio:.2f}x the reference"
