"""Soft updates: delayed metadata writes with fine-grained dependencies.

The paper's contribution (section 4.2 + appendix).  All four structural
changes use delayed writes:

* block allocation and link addition use undo/redo rollback -- a block with
  pending dependencies can be written at any time, with the not-yet-safe
  updates temporarily undone in the written image;
* block deallocation and link removal are *deferred* -- the freeing of
  resources (bitmap bits, link counts) waits until the reset pointers have
  reached stable storage, driven by the workitem queue.

The result: metadata updates proceed at memory speed, multiple updates to
one block aggregate into one disk write, and a create-then-remove pair can
complete with no disk I/O at all -- while every crash state remains
fsck-consistent (the integrity suite verifies this).
"""

from __future__ import annotations

from typing import Generator

from repro.fs.layout import Dinode
from repro.ordering.base import AllocContext, OrderingScheme
from repro.ordering.guarantees import CrashGuarantees
from repro.ordering.softupdates.manager import SoftDepManager


class SoftUpdatesScheme(OrderingScheme):
    """The soft updates implementation."""

    name = "Soft Updates"
    uses_block_copy = True  # the separate write source is inherent to the
    # design (the paper's in-core inode / safe-copy indirection)
    # deferred deallocation means a crash may leak blocks/inodes and leave
    # link counts high, but rollback keeps every image free of corruption
    declared_guarantees = CrashGuarantees(allows_corruption=False)

    def __init__(self, alloc_init: bool = True) -> None:
        # allocation initialization is enforced by default: with soft
        # updates it is nearly free (tables 1 and 3 note "Allocation
        # initialization was enforced only for Soft Updates")
        super().__init__(alloc_init=alloc_init)
        self.manager: SoftDepManager = None

    def attach(self, fs) -> None:
        super().attach(fs)
        self.manager = SoftDepManager(fs)

    # ------------------------------------------------------------------
    def link_added(self, dp, dbuf, offset, ip, new_inode: bool) -> Generator:
        ibuf = yield from self._release_on_error(
            self.fs.load_inode_buf(ip.ino), dbuf)
        self.fs.store_inode(ip, ibuf)
        offset_in_block = offset % self.fs.geometry.block_size
        self.manager.record_add(dbuf, offset_in_block, ip, ibuf)
        self.fs.cache.bdwrite(ibuf)
        self.fs.cache.bdwrite(dbuf)

    def dotdot_link_added(self, dp, child_buf, offset) -> Generator:
        # '..' points at an already-initialized inode; no rollback dependency
        # is registered (the transient link-count undercount is a mechanical
        # fsck repair).  Rolling '..' back would instead expose reachable
        # directories without their dot entries, which fsck cannot repair.
        yield from self.inode_updated(dp)
        self.fs.cache.bdwrite(child_buf)

    def link_removed(self, dp, dbuf, offset, ip) -> Generator:
        offset_in_block = offset % self.fs.geometry.block_size
        cancelled = self.manager.record_remove(dbuf, offset_in_block, ip)
        self.fs.cache.bdwrite(dbuf)
        if cancelled:
            # add + remove serviced with no disk writes at all
            yield from self.fs.drop_link(ip)
        # otherwise: drop_link runs from the workitem queue once the
        # directory block reaches stable storage

    def block_allocated(self, ctx: AllocContext) -> Generator:
        moved = bool(ctx.old_daddr) and ctx.old_daddr != ctx.new_daddr
        # deallocation ordering (rule 2, the fragment-move case) is always
        # enforced; only *initialization* tracking is optional
        track_needed = ctx.is_metadata or self.alloc_init or moved
        if not track_needed:
            if ctx.ibuf is not None:
                self.fs.cache.bdwrite(ctx.ibuf)
            self.fs.cache.bdwrite(ctx.data_buf)
            return
        old_size = None
        if ctx.owner_kind == "inode" and 0 <= ctx.slot < 12:
            # rolling back this pointer also rolls the length back to what
            # the file held before this block/fragment was attached
            old_size = min(ctx.ip.din.size,
                           ctx.lblk * self.fs.geometry.block_size
                           + ctx.old_frags * self.fs.geometry.frag_size)
        if ctx.owner_kind == "inode":
            owner_buf = yield from self.fs.load_inode_buf(ctx.ip.ino)
        else:
            owner_buf = ctx.ibuf
        dep = self.manager.record_alloc(
            ctx.ip, owner_buf, ctx.owner_kind, ctx.slot, ctx.new_daddr,
            old_daddr=ctx.old_daddr, old_size=old_size,
            data_buf=ctx.data_buf)
        if moved:
            # the old run is freed only after the new pointer is safely on
            # disk ("we do not consider the inode appropriately 'modified'
            # until the allocdirect dependency clears")
            dep.free_on_clear.append((ctx.old_daddr, ctx.old_frags))
            self.fs.cache.invalidate(ctx.old_daddr, ctx.old_frags)
        if ctx.owner_kind == "inode":
            self.manager.track(owner_buf, "inode")
            self.fs.store_inode(ctx.ip, owner_buf)
            self.fs.cache.bdwrite(owner_buf)
        else:
            self.fs.cache.bdwrite(owner_buf)
        self.fs.cache.bdwrite(ctx.data_buf)
        yield from self.fs.cpu.compute(self.fs.costs.time("softdep", 2))

    def truncated(self, ip, runs) -> Generator:
        extra = self.manager.cancel_for_truncate(ip, runs)
        runs = list(runs) + extra
        ibuf = yield from self.fs.load_inode_buf(ip.ino)
        self.fs.store_inode(ip, ibuf)
        # the bitmap bits clear only after the reset pointers are written
        self.manager.record_free(ip, ibuf, runs, ino=None)
        self.fs.cache.bdwrite(ibuf)
        yield from self.fs.cpu.compute(self.fs.costs.time("softdep"))

    def release_inode(self, ip) -> Generator:
        runs = yield from self.fs.collect_blocks(ip)
        extra = self.manager.cancel_for_release(ip, runs)
        runs = list(runs) + extra
        self.fs.clear_block_pointers(ip)
        ino = ip.ino
        ip.din = Dinode()
        ip.deleted = True
        self.fs.itable.drop(ino)
        # cancel pending delayed writes of the dead file's blocks: this is
        # where the order-of-magnitude I/O reduction of table 2 comes from
        for daddr, frags in runs:
            self.fs.cache.invalidate(daddr, frags)
        ibuf = yield from self.fs.load_inode_buf(ino)
        at = self.fs.geometry.inode_offset_in_block(ino)
        ibuf.data[at:at + 128] = bytes(128)
        # the bitmap bits clear only after this reset write completes
        self.manager.record_free(ip, ibuf, runs, ino)
        self.fs.cache.bdwrite(ibuf)
        yield from self.fs.cpu.compute(self.fs.costs.time("softdep"))

    # ------------------------------------------------------------------
    def inode_updated(self, ip) -> Generator:
        ibuf = yield from self.fs.load_inode_buf(ip.ino)
        self.fs.store_inode(ip, ibuf)
        self.manager.track_inode_buffer(ip, ibuf)
        self.fs.cache.bdwrite(ibuf)

    def fsync(self, ip) -> Generator:
        """SYNCIO: push this inode's whole dependency chain to disk."""
        for _ in range(1000):
            if not self.manager.inode_busy(ip.ino):
                ibuf = yield from self.fs.load_inode_buf(ip.ino)
                self.fs.store_inode(ip, ibuf)
                yield from self.fs.cache.bwrite(ibuf)
                if not self.manager.inode_busy(ip.ino):
                    return
                continue
            yield from self.manager.service()
            yield from self.fs.cache.sync()
        raise RuntimeError("fsync did not converge")

    def drain(self) -> Generator:
        yield from self.manager.drain()

    def pending_work(self) -> int:
        return self.manager.pending()
