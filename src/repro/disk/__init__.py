"""Disk drive model.

Models an HP C2447-class SCSI drive (the paper's experimental disk): a
1 GB, 3.5-inch, 5400 RPM device with a segmented on-board read cache that
prefetches sequentially.  The model is mechanical -- every access pays
controller overhead, seek, rotational latency and media transfer -- because
the paper's scheme differences are differences in *how many* and *in what
order* mechanical accesses happen.

Public surface:

* :class:`DiskGeometry` -- platter layout and LBN mapping.
* :class:`DiskParameters` -- timing constants (seek curve, RPM, overheads).
* :class:`SectorStore` -- the persistent bytes (what survives a crash);
  the dict-backed reference implementation.
* :class:`FlatSectorStore` -- the contiguous flat-buffer implementation
  (the default); :data:`STORES` / :func:`store_name` /
  :func:`resolve_store` select between them (``REPRO_STORE``).
* :class:`Disk` -- the drive: a generator-based ``service`` routine.
"""

from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import DiskParameters
from repro.disk.storage import (
    DEFAULT_STORE,
    STORES,
    FlatSectorStore,
    SectorStore,
    resolve_store,
    store_name,
)
from repro.disk.drive import Disk

__all__ = ["Disk", "DiskGeometry", "DiskParameters", "SectorStore",
           "FlatSectorStore", "STORES", "DEFAULT_STORE", "store_name",
           "resolve_store"]
