"""Unit tests for Lock, Semaphore, WaitQueue, FIFOQueue and CPU."""

import pytest

from repro.sim import CPU, Engine, FIFOQueue, Lock, Semaphore, WaitQueue


@pytest.fixture
def eng():
    return Engine()


class TestLock:
    def test_uncontended_acquire_is_instant(self, eng):
        lock = Lock(eng)

        def worker():
            yield lock.acquire()
            lock.release()
            return eng.now

        assert eng.run_until(eng.process(worker())) == 0.0

    def test_mutual_exclusion(self, eng):
        lock = Lock(eng)
        trace = []

        def worker(tag):
            yield lock.acquire()
            trace.append(("enter", tag, eng.now))
            yield eng.timeout(1.0)
            trace.append(("exit", tag, eng.now))
            lock.release()

        eng.run_all([eng.process(worker(i)) for i in range(3)])
        # critical sections must not overlap
        assert trace == [
            ("enter", 0, 0.0), ("exit", 0, 1.0),
            ("enter", 1, 1.0), ("exit", 1, 2.0),
            ("enter", 2, 2.0), ("exit", 2, 3.0),
        ]

    def test_fifo_handoff(self, eng):
        lock = Lock(eng)
        order = []

        def worker(tag, delay):
            yield eng.timeout(delay)
            yield lock.acquire()
            order.append(tag)
            yield eng.timeout(10.0)
            lock.release()

        eng.run_all([eng.process(worker(t, 0.1 * t)) for t in range(4)])
        assert order == [0, 1, 2, 3]

    def test_release_unlocked_raises(self, eng):
        with pytest.raises(RuntimeError):
            Lock(eng).release()

    def test_holding_releases_on_exception(self, eng):
        lock = Lock(eng)

        def body():
            yield eng.timeout(1.0)
            raise ValueError("inner")

        def worker():
            with pytest.raises(ValueError):
                yield from lock.holding(body())
            return lock.locked

        assert eng.run_until(eng.process(worker())) is False


class TestSemaphore:
    def test_counts_limit_concurrency(self, eng):
        sem = Semaphore(eng, 2)
        active = []
        peak = []

        def worker():
            yield sem.acquire()
            active.append(1)
            peak.append(len(active))
            yield eng.timeout(1.0)
            active.pop()
            sem.release()

        eng.run_all([eng.process(worker()) for _ in range(5)])
        assert max(peak) == 2

    def test_negative_count_rejected(self, eng):
        with pytest.raises(ValueError):
            Semaphore(eng, -1)


class TestWaitQueue:
    def test_signal_wakes_one(self, eng):
        wq = WaitQueue(eng)
        woken = []

        def sleeper(tag):
            yield wq.wait()
            woken.append(tag)

        procs = [eng.process(sleeper(i)) for i in range(3)]
        eng.run()
        assert wq.signal() is True
        eng.run()
        assert woken == [0]
        assert wq.broadcast() == 2
        eng.run_all(procs)
        assert woken == [0, 1, 2]

    def test_signal_empty_returns_false(self, eng):
        assert WaitQueue(eng).signal() is False


class TestFIFOQueue:
    def test_put_then_get(self, eng):
        q = FIFOQueue(eng)
        q.put("a")
        q.put("b")

        def consumer():
            first = yield q.get()
            second = yield q.get()
            return [first, second]

        assert eng.run_until(eng.process(consumer())) == ["a", "b"]

    def test_get_blocks_until_put(self, eng):
        q = FIFOQueue(eng)

        def consumer():
            item = yield q.get()
            return (eng.now, item)

        proc = eng.process(consumer())
        eng.call_later(2.0, q.put, "late")
        assert eng.run_until(proc) == (2.0, "late")


class TestCPU:
    def test_compute_consumes_time_and_charges_process(self, eng):
        cpu = CPU(eng)

        def worker():
            yield from cpu.compute(0.030)

        proc = eng.process(worker())
        eng.run_until(proc)
        assert eng.now == pytest.approx(0.030)
        assert proc.cpu_time == pytest.approx(0.030)
        assert cpu.busy_time == pytest.approx(0.030)

    def test_single_server_serialises(self, eng):
        cpu = CPU(eng)

        def worker():
            yield from cpu.compute(0.050)

        procs = [eng.process(worker()) for _ in range(2)]
        eng.run_all(procs)
        assert eng.now == pytest.approx(0.100)

    def test_quantum_interleaves_fairly(self, eng):
        cpu = CPU(eng, quantum=0.010)
        finish = {}

        def worker(tag, amount):
            yield from cpu.compute(amount)
            finish[tag] = eng.now

        eng.run_all([eng.process(worker("long", 0.100)),
                     eng.process(worker("short", 0.010))])
        # the short job must not wait for the whole long job
        assert finish["short"] < 0.100

    def test_disabled_cpu_is_free(self, eng):
        cpu = CPU(eng)
        cpu.enabled = False

        def worker():
            yield from cpu.compute(5.0)

        proc = eng.process(worker())
        eng.run_until(proc)
        assert eng.now == 0.0
        assert proc.cpu_time == 0.0

    def test_negative_compute_rejected(self, eng):
        cpu = CPU(eng)

        def worker():
            yield from cpu.compute(-1.0)

        from repro.sim import ProcessCrashed
        with pytest.raises(ProcessCrashed):
            eng.run_until(eng.process(worker()))
