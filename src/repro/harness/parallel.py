"""Run independent benchmark cells across a multiprocessing pool.

The benchmark grids (tables 1-3, figures 1-6, the extensions) are
embarrassingly parallel: every ``(scheme, config)`` cell builds its own
:class:`~repro.machine.Machine`, runs it to completion, and reduces the
trace to a small result object -- cells share no state.  This module fans a
grid's cells across a pool of forked workers, the same pattern
``repro.integrity.explorer`` uses for crash-point verification: the work
list is a module-level global installed *before* the pool forks, so child
processes inherit the cell closures by address space and only list indices
(and the small results) cross the pipe.

Determinism is the contract.  A cell's simulation is bit-identical no
matter which worker runs it (the simulator seeds all randomness and has no
hidden cross-machine state), and :func:`run_grid` returns results keyed in
*input* order regardless of completion order -- so a parallel grid produces
byte-identical tables to a serial one.  ``REPRO_JOBS=1`` forces the serial
path; the suite's CI job diffs the two.

Every grid also records per-cell wall seconds and simulator events into
:data:`GRID_REPORTS`; ``benchmarks/conftest.py`` flushes those into the
``BENCH_perf.json`` trajectory and ``benchmarks/results/perf_report.txt``
at session end, so future performance work has a baseline to compare
against.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Cell", "CellStats", "GridCellError", "GridReport", "GRID_REPORTS",
           "default_jobs", "run_grid"]


@dataclass
class Cell:
    """One independent grid cell: a key and a zero-argument experiment."""

    key: Any
    fn: Callable[[], Any]


@dataclass
class CellStats:
    """Per-cell performance record (host wall clock + simulator events)."""

    key: str
    wall_seconds: float
    sim_events: int
    #: extras the result object volunteers via a ``perf_extra`` mapping
    #: (e.g. the crash explorer's points verified / points-per-second);
    #: flushed verbatim into the cell's BENCH_perf.json record
    extra: dict = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        return self.sim_events / self.wall_seconds if self.wall_seconds else 0.0


@dataclass
class GridReport:
    """One grid's performance summary, appended to :data:`GRID_REPORTS`."""

    name: str
    jobs: int
    #: wall seconds for the whole grid (cells overlap when jobs > 1)
    wall_seconds: float = 0.0
    cells: list = field(default_factory=list)

    @property
    def cell_wall_total(self) -> float:
        """Sum of per-cell walls (= serial cost; > wall_seconds when parallel)."""
        return sum(cell.wall_seconds for cell in self.cells)

    @property
    def sim_events(self) -> int:
        return sum(cell.sim_events for cell in self.cells)


class GridCellError(RuntimeError):
    """A grid cell's experiment raised.

    Raised by :func:`run_grid` in the parent process, naming the grid and
    the failing cell key -- a bare exception surfacing from a fork-pool
    worker would otherwise leave no clue *which* (scheme, config) cell
    died.  The worker-side traceback is carried in ``cell_traceback`` and
    included in the message.
    """

    def __init__(self, grid: str, key: Any, error: str, tb: str) -> None:
        super().__init__(
            f"grid {grid!r} cell {key!r} failed: {error}\n"
            f"--- worker traceback ---\n{tb}")
        self.grid = grid
        self.key = key
        self.error = error
        self.cell_traceback = tb


@dataclass
class _CellFailure:
    """Worker-side capture of a cell exception (picklable, unlike many
    exception objects with machine state attached)."""

    error: str
    traceback: str


#: every grid executed this session, in execution order
GRID_REPORTS: list[GridReport] = []

#: the active grid's cells; a module-level global so forked workers inherit
#: the closures and :func:`_run_cell` only needs an index (explorer.py's
#: pattern -- closures over local state cannot cross a pickle boundary)
_WORK: list[Cell] = []


def _run_cell(index: int):
    cell = _WORK[index]
    start = time.perf_counter()
    try:
        result = cell.fn()
    except Exception as exc:
        result = _CellFailure(f"{type(exc).__name__}: {exc}",
                              traceback.format_exc())
    return index, result, time.perf_counter() - start


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else the machine's core count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def run_grid(name: str, cells: list, jobs: Optional[int] = None) -> dict:
    """Run every cell; return ``{key: result}`` in input order.

    *cells* is a list of :class:`Cell` or ``(key, fn)`` pairs.  Runs
    serially when *jobs* resolves to 1, when only one cell exists, or when
    the platform cannot fork (the pool pattern requires inherited memory);
    otherwise fans out over a fork pool.  Either way the returned mapping
    and all recorded statistics are identical -- completion order never
    leaks into the results.
    """
    cells = [cell if isinstance(cell, Cell) else Cell(*cell)
             for cell in cells]
    if jobs is None:
        jobs = default_jobs()
    methods = multiprocessing.get_all_start_methods()
    parallel = jobs > 1 and len(cells) > 1 and "fork" in methods
    report = GridReport(name=name, jobs=jobs if parallel else 1)
    grid_start = time.perf_counter()

    outcomes: list = [None] * len(cells)
    if parallel:
        global _WORK
        previous, _WORK = _WORK, cells
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(min(jobs, len(cells))) as pool:
                for index, result, wall in pool.imap_unordered(
                        _run_cell, range(len(cells)), chunksize=1):
                    outcomes[index] = (result, wall)
        finally:
            _WORK = previous
    else:
        for index, cell in enumerate(cells):
            start = time.perf_counter()
            try:
                result = cell.fn()
            except Exception as exc:
                result = _CellFailure(f"{type(exc).__name__}: {exc}",
                                      traceback.format_exc())
            outcomes[index] = (result, time.perf_counter() - start)

    report.wall_seconds = time.perf_counter() - grid_start
    # surface the first failure in *input* order (deterministic no matter
    # which worker hit it or when), naming the cell that died
    for cell, (result, _wall) in zip(cells, outcomes):
        if isinstance(result, _CellFailure):
            raise GridCellError(name, cell.key, result.error,
                                result.traceback)
    results = {}
    for cell, (result, wall) in zip(cells, outcomes):
        results[cell.key] = result
        report.cells.append(CellStats(
            key=str(cell.key), wall_seconds=wall,
            sim_events=getattr(result, "sim_events", 0) or 0,
            extra=dict(getattr(result, "perf_extra", None) or {})))
    GRID_REPORTS.append(report)
    return results
