"""Named counters, gauges, and fixed-bucket histograms.

Components register instruments once (at construction, when the machine was
built with observability on) and update them through direct attribute calls
-- no name lookup on the hot path.  When observability is off, components
hold ``None`` instead of an instrument and skip the update behind a single
``is not None`` check, which is what keeps the disabled overhead within the
budget documented in ``docs/observability.md``.

``snapshot()`` flattens everything into a plain ``{name: number}`` dict
(histograms contribute ``name.count`` / ``name.sum`` / ``name.avg``) so the
harness can merge it into ``RunResult.extra`` and benchmark tables can cite
any metric by name.
"""

from __future__ import annotations

import bisect
from typing import Optional, Sequence

#: default latency buckets (simulated seconds): 100us .. 10s, decade thirds
TIME_BUCKETS = (0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03,
                0.1, 0.3, 1.0, 3.0, 10.0)


class Counter:
    """A monotonically increasing value (int or float)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value, with high-watermark convenience."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def track_max(self, value) -> None:
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed upper-bound buckets plus count/sum (Prometheus-style).

    ``counts[i]`` is the number of observations ``<= bounds[i]``
    (non-cumulative storage; cumulated at snapshot time); the final slot
    counts overflows.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float] = TIME_BUCKETS) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must ascend: {bounds}")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def avg(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_rows(self) -> list[tuple[str, int]]:
        """(label, count) per bucket, overflow last; for reports."""
        rows = [(f"<={bound:g}", count)
                for bound, count in zip(self.bounds, self.counts)]
        rows.append((f">{self.bounds[-1]:g}", self.counts[-1]))
        return rows

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} avg={self.avg:.6f}>"


class MetricsRegistry:
    """Create-or-get registry of named instruments."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  bounds: Sequence[float] = TIME_BUCKETS) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self.histograms[name] = Histogram(name, bounds)
        elif tuple(bounds) != instrument.bounds:
            raise ValueError(
                f"histogram {name!r} re-registered with different bounds")
        return instrument

    def _check_free(self, name: str) -> None:
        if name in self.counters or name in self.gauges \
                or name in self.histograms:
            raise ValueError(
                f"metric {name!r} already registered as another type")

    def snapshot(self) -> dict:
        """Flatten every instrument into ``{name: number}``."""
        flat: dict = {}
        for name, counter in self.counters.items():
            flat[name] = counter.value
        for name, gauge in self.gauges.items():
            flat[name] = gauge.value
        for name, histogram in self.histograms.items():
            flat[f"{name}.count"] = histogram.count
            flat[f"{name}.sum"] = histogram.total
            flat[f"{name}.avg"] = histogram.avg
        return flat

    def __repr__(self) -> str:
        n = (len(self.counters) + len(self.gauges) + len(self.histograms))
        return f"<MetricsRegistry instruments={n}>"
