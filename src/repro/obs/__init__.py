"""repro.obs -- deterministic tracing + metrics for the simulated testbed.

Enable by building the machine with ``MachineConfig(observe=True)``; every
layer then records spans (syscall -> buffer cache -> ordering decision ->
driver queue -> drive mechanics) and updates named metrics.  Tracing is
strictly passive -- it never touches the event heap -- so a traced run
produces byte-identical simulated behaviour to an untraced one
(``tests/obs/test_equivalence.py``).

Exports: Perfetto/Chrome ``trace_event`` JSON (:mod:`repro.obs.export`) and
a plain-text flame summary (:mod:`repro.obs.flame`);
``python -m repro.harness trace`` runs one benchmark cell with tracing on
and writes both under ``results/traces/``.
"""

from repro.obs.export import (
    TraceFormatError,
    trace_events,
    validate_trace_events,
    validate_trace_file,
    write_trace,
)
from repro.obs.flame import category_totals, coverage, flame_summary, summarize
from repro.obs.observatory import (
    append_ledger,
    host_facts,
    ledger_path,
    read_ledger,
    snapshot_digest,
)
from repro.obs.profiler import (
    CATEGORY_LAYER,
    LAYERS,
    LayerProfiler,
    format_profile_report,
    profile_rows,
)
from repro.obs.registry import (
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.session import Observability
from repro.obs.tracer import NULL_SPAN, Span, Tracer

__all__ = [
    "CATEGORY_LAYER",
    "Counter",
    "Gauge",
    "Histogram",
    "LAYERS",
    "LayerProfiler",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "Span",
    "TIME_BUCKETS",
    "TraceFormatError",
    "Tracer",
    "append_ledger",
    "category_totals",
    "coverage",
    "flame_summary",
    "format_profile_report",
    "host_facts",
    "ledger_path",
    "profile_rows",
    "read_ledger",
    "snapshot_digest",
    "summarize",
    "trace_events",
    "validate_trace_events",
    "validate_trace_file",
    "write_trace",
]
