"""One fixture image per fsck finding type, asserting the exact codes.

The clean sweeps never exercise most of fsck's finding paths -- a safe
scheme simply never produces an orphan chain or a drifted bitmap.  Each
test here builds a known-good image, performs one surgical mutation, and
asserts the *exact* finding string fsck must produce (the strings are the
API: the explorer's invariant classifier and the repair tests key on
them).  Every fixture is also audited through the parallel path -- the
pool must report damaged images identically to serial, not only clean
ones -- and repaired back to pristine where repair claims to handle it.
"""

import struct

import pytest

from repro.fs import directory
from repro.fs.alloc import CgView
from repro.fs.layout import FileType, ROOT_INO
from repro.integrity import fsck, repair
from tests.conftest import SMALL_GEOMETRY, make_machine, run_user
from tests.integrity.test_fsck_parallel import report_key

SPF = SMALL_GEOMETRY.frag_size // 512


def populated():
    m = make_machine("noorder")

    def setup():
        yield from m.fs.write_file("/one", b"1" * 5000)
        yield from m.fs.write_file("/two", b"2" * 5000)
        yield from m.fs.link("/one", "/hard")
        yield from m.fs.sync()

    run_user(m, setup())
    return m


def ino_of(report, name):
    return next(ino for ino, refs in report.references.items()
                if name in {n for _d, n in refs})


def read_block(store, daddr, frags=SMALL_GEOMETRY.frags_per_block):
    return bytearray(store.read(daddr * SPF, frags * SPF))


def write_block(store, daddr, raw):
    store.write(daddr * SPF, bytes(raw))


def patch_inode(m, ino, offset, data):
    geo = m.fs.geometry
    raw = read_block(m.disk.storage, geo.inode_block_daddr(ino))
    at = geo.inode_offset_in_block(ino) + offset
    raw[at:at + len(data)] = data
    write_block(m.disk.storage, geo.inode_block_daddr(ino), raw)


def assert_finding(m, kind, message):
    """The fixture produces exactly this finding, serially and pooled."""
    serial = fsck(m.disk.storage, SMALL_GEOMETRY)
    findings = serial.errors if kind == "error" else serial.warnings
    assert message in findings, (message, findings)
    parallel = fsck(m.disk.storage, SMALL_GEOMETRY, jobs=4)
    assert report_key(parallel) == report_key(serial)
    return serial


def assert_repairs_to_pristine(m):
    image = m.disk.storage.snapshot()
    after = repair(image, SMALL_GEOMETRY)
    assert after.clean and not after.warnings, (after.errors[:3],
                                                after.warnings[:3])


class TestOrphanedInode:
    def test_exact_code_and_repair(self):
        m = populated()
        before = fsck(m.disk.storage, SMALL_GEOMETRY)
        victim = ino_of(before, "two")
        # kill the directory entry (ino := 0) but leave the inode, its
        # claims, and the bitmaps untouched: a textbook orphan
        root_blk = before.inodes[ROOT_INO].direct[0]
        raw = read_block(m.disk.storage, root_blk)
        entry = next(e for e in directory.iter_entries(raw)
                     if e.live and e.name == "two")
        struct.pack_into("<I", raw, entry.offset, 0)
        write_block(m.disk.storage, root_blk, raw)

        report = assert_finding(
            m, "warning",
            f"inode {victim} allocated but unreferenced (orphan; "
            f"fsck reclaims)")
        assert report.clean  # an orphan is repairable, never corruption
        assert victim not in report.references
        assert_repairs_to_pristine(m)


class TestDuplicateClaim:
    def test_exact_code(self):
        m = populated()
        before = fsck(m.disk.storage, SMALL_GEOMETRY)
        one, two = ino_of(before, "one"), ino_of(before, "two")
        stolen = before.inodes[two].direct[0]
        # point 'one' (the lower ino, scanned first) at 'two's block
        patch_inode(m, one, 28, struct.pack("<I", stolen))

        owner, thief = sorted((one, two))
        report = assert_finding(
            m, "error",
            f"fragment {stolen} claimed by both inode {owner} "
            f"and inode {thief} (rule 2 violated)")
        assert not report.clean  # a double claim is true corruption


class TestBadLinkCounts:
    @pytest.mark.parametrize("nlink,direction", [(1, "below"), (7, "above")])
    def test_exact_codes(self, nlink, direction):
        m = populated()
        before = fsck(m.disk.storage, SMALL_GEOMETRY)
        victim = ino_of(before, "hard")  # true count is 2
        patch_inode(m, victim, 2, struct.pack("<H", nlink))
        report = assert_finding(
            m, "warning",
            f"inode {victim} link count {nlink} {direction} actual "
            f"references 2 (fsck repairs)")
        assert report.clean
        assert_repairs_to_pristine(m)


class TestBitmapDrift:
    def test_used_fragment_marked_free(self):
        m = populated()
        geo = m.fs.geometry
        before = fsck(m.disk.storage, SMALL_GEOMETRY)
        victim = ino_of(before, "one")
        daddr = before.inodes[victim].direct[0]
        cg = geo.cg_of_daddr(daddr)
        raw = read_block(m.disk.storage, geo.cg_base(cg))
        CgView(raw, geo).set_frags(daddr - geo.cg_data_start(cg), 1, False)
        write_block(m.disk.storage, geo.cg_base(cg), raw)

        report = assert_finding(
            m, "warning",
            f"fragment {daddr} in use by inode {victim} but marked free "
            f"(fsck repairs)")
        assert report.clean
        assert_repairs_to_pristine(m)

    def test_allocated_inode_marked_free(self):
        m = populated()
        geo = m.fs.geometry
        before = fsck(m.disk.storage, SMALL_GEOMETRY)
        victim = ino_of(before, "one")
        cg, index = divmod(victim, geo.ipg)
        raw = read_block(m.disk.storage, geo.cg_base(cg))
        CgView(raw, geo).set_inode(index, False)
        write_block(m.disk.storage, geo.cg_base(cg), raw)

        report = assert_finding(
            m, "warning",
            f"inode {victim} allocated but bitmap says free (fsck repairs)")
        assert report.clean
        assert_repairs_to_pristine(m)

    def test_free_inode_marked_used(self):
        m = populated()
        geo = m.fs.geometry
        spare = geo.ipg + 50  # cg 1, never allocated
        raw = read_block(m.disk.storage, geo.cg_base(1))
        CgView(raw, geo).set_inode(spare - geo.ipg, True)
        write_block(m.disk.storage, geo.cg_base(1), raw)

        report = assert_finding(
            m, "warning",
            f"inode {spare} bitmap used but dinode free (leak)")
        assert report.clean
        assert_repairs_to_pristine(m)

    def test_free_fragment_marked_used(self):
        m = populated()
        geo = m.fs.geometry
        daddr = geo.cg_data_start(1) + 300  # never allocated
        raw = read_block(m.disk.storage, geo.cg_base(1))
        CgView(raw, geo).set_frags(300, 1, True)
        write_block(m.disk.storage, geo.cg_base(1), raw)

        report = assert_finding(
            m, "warning",
            f"fragment {daddr} marked used but unreferenced (leak)")
        assert report.clean
        assert_repairs_to_pristine(m)
