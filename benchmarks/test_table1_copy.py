"""Table 1: scheme comparison, 4-user copy (with and without alloc-init).

Paper findings asserted here:

* No Order beats Conventional by ~20% elapsed and ~12% fewer disk requests;
* Scheduler Flag / Chains shave only a few percent off Conventional;
* Soft Updates lands within a few percent of No Order;
* allocation initialization is expensive for Conventional (+87%) and the
  scheduler schemes (+40-45%) but nearly free for Soft Updates (<~5%).
"""

from repro.harness.report import format_table
from repro.harness.runner import (
    STANDARD_SCHEMES,
    run_copy,
    standard_scheme_config,
)
from repro.workloads.trees import TreeSpec

from benchmarks.conftest import SCALE, emit, run_grid, scaled_cache


def test_table1_copy(once):
    tree = TreeSpec().scaled(SCALE)

    def cell(name, init):
        def run():
            config = standard_scheme_config(name, alloc_init=init,
                                            cache_bytes=scaled_cache())
            return run_copy(config, users=4, tree=tree)
        return (name, init), run

    def experiment():
        cells = [cell(name, init)
                 for name in STANDARD_SCHEMES
                 for init in ((False,) if name == "No Order"
                              else (False, True))]
        return run_grid("table1_copy", cells)

    results = once(experiment)
    base = results[("No Order", False)].elapsed
    rows = []
    for (name, init), r in results.items():
        rows.append([name, "Y" if init else "N", r.elapsed,
                     100.0 * r.elapsed / base, r.cpu_time, r.disk_requests,
                     r.io_response_avg * 1000])
    emit("table1_copy", format_table(
        f"Table 1: scheme comparison, 4-user copy "
        f"(scale={SCALE}, simulated seconds)",
        ["Ordering Scheme", "Alloc.Init", "Elapsed (s)", "% of No Order",
         "CPU (s)", "Disk Requests", "I/O Resp Avg (ms)"], rows))

    def elapsed(name, init=False):
        return results[(name, init)].elapsed

    def requests(name, init=False):
        return results[(name, init)].disk_requests

    # ordering of the schemes (no alloc-init)
    assert elapsed("Conventional") > elapsed("Scheduler Flag") * 0.98
    assert elapsed("Scheduler Flag") >= elapsed("Soft Updates")
    assert elapsed("Scheduler Chains") >= elapsed("Soft Updates")
    # soft updates within ~8% of the no-order bound
    assert elapsed("Soft Updates") <= elapsed("No Order") * 1.08
    # conventional pays a real penalty over the bound
    assert elapsed("Conventional") >= elapsed("No Order") * 1.10
    # delayed metadata writes need fewer disk requests
    assert requests("Soft Updates") < requests("Conventional") * 0.95
    # allocation initialization: expensive conventionally, ~free for soft
    conv_penalty = elapsed("Conventional", True) / elapsed("Conventional")
    soft_penalty = elapsed("Soft Updates", True) / elapsed("Soft Updates")
    assert conv_penalty > 1.15
    assert soft_penalty < 1.10
    assert soft_penalty < conv_penalty
    # with init, conventional/flag/chains write every block twice-ish
    assert requests("Conventional", True) > requests("Conventional") * 1.2
    assert requests("Soft Updates", True) < requests("Soft Updates") * 1.1
