"""Deterministic, seedable disk fault injection.

The paper's argument is that metadata update ordering protects integrity
when the hardware misbehaves; this package supplies the misbehaving
hardware.  A :class:`FaultPlan` is a frozen, picklable description of how
unreliable the simulated HP C2447 should be; a :class:`FaultInjector` is
its per-machine runtime (seeded RNG, grown-defect set, spare-sector pool,
event log).  The drive consults the injector once per *media* operation
(on-board cache hits never touch the platters and are never faulted), so
for a given plan the injected fault sequence is a pure function of the
simulated I/O stream -- same seed, same run, same faults.

Fault model (see ``docs/fault-injection.md``):

* **transient** -- the operation consumes its mechanical service time but
  the controller reports failure; nothing reaches the platters on a write.
  A retry redraws, so bounded driver retries recover with overwhelming
  probability.
* **torn** -- a write lays down a sector *prefix* (reusing the drive's
  ``InFlightWrite`` per-sector ECC semantics) and then fails; the retried
  write re-covers the whole range.
* **medium** -- a sector has gone bad.  Grown defects are discovered by
  writes (the write fails at the bad sector; the driver issues a SCSI-style
  REASSIGN BLOCKS and retries); latent defects are discovered by reads
  (the data is gone -- the failure propagates up as EIO).
* **timeout** -- the controller gives up after ``timeout_penalty`` seconds
  without transferring anything; retryable like a transient.

When no plan is attached (the default everywhere) not a single extra
simulation event, timeout, or RNG draw occurs: fault-free runs are
byte-identical to runs of a tree without this package
(``tests/faults/test_equivalence.py`` proves it).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Optional


class MediaError(Exception):
    """An unrecoverable media failure surfaced to the blocked syscall (EIO).

    Raised by the buffer cache when a read's retries are exhausted (the
    sector's data is gone) or a write has permanently failed; the simulated
    user process sees it exactly where a UNIX process would see ``EIO``.
    """

    def __init__(self, daddr: int, detail: str = "unreadable media") -> None:
        super().__init__(f"EIO: {detail} at daddr {daddr}")
        self.code = "EIO"
        self.daddr = daddr


class FaultKind(enum.Enum):
    """What went wrong at the drive."""

    TRANSIENT = "transient"
    TORN = "torn"
    MEDIUM = "medium"
    TIMEOUT = "timeout"


#: request error codes (``DiskRequest.error``) the driver reports upward
EIO = "EIO"                  # read failed permanently: the data is lost
NOSPARE = "nospare"          # write hit a defect and the spare pool is dry
EXHAUSTED = "exhausted"      # bounded retries ran out on a transient fault


def is_retryable(code: Optional[str]) -> bool:
    """True when a later re-issued write of the same block can succeed.

    Transient/torn/timeout exhaustion redraws on the next attempt, so the
    cache re-dirties the buffer and lets the syncer retry; ``EIO`` and
    ``nospare`` are final.
    """
    return code == EXHAUSTED


@dataclass(frozen=True)
class Fault:
    """One injected fault, decided before the media operation starts."""

    kind: FaultKind
    #: sectors that reach the platters before the failure (writes only)
    sectors_applied: int = 0
    #: the defective sector for MEDIUM faults
    bad_lbn: Optional[int] = None


@dataclass(frozen=True)
class SenseData:
    """SCSI-style sense the drive holds for the command just completed."""

    code: str                       # FaultKind value
    bad_lbn: Optional[int] = None   # medium errors: the defective sector
    sectors_applied: int = 0        # writes: prefix that reached the media


@dataclass(frozen=True)
class FaultEvent:
    """One entry in the injector's typed event log."""

    time: float
    kind: str        # inject / retry / remap / redirty / requeue /
    #                # read_eio / lost_write / sync_write_failed /
    #                # journal_degraded
    detail: str


@dataclass(frozen=True)
class FaultPlan:
    """Frozen, picklable description of disk unreliability.

    Rates are per *media operation* probabilities.  The plan is inert data:
    :meth:`build` creates the per-machine runtime.  Keeping the plan frozen
    and the runtime separate is what lets the crash explorer ship plans to
    pool workers and replay identical fault sequences.
    """

    seed: int = 0
    transient_read_rate: float = 0.0
    transient_write_rate: float = 0.0
    torn_write_rate: float = 0.0
    timeout_rate: float = 0.0
    #: per-write probability that a sector under the head goes bad (found
    #: and reassigned by the write path; no data is lost)
    grown_defect_rate: float = 0.0
    #: per-read probability that a sector under the head has rotted (found
    #: by the read path; the data IS lost -- this is the EIO generator)
    latent_defect_rate: float = 0.0
    #: simulated seconds a controller timeout wastes
    timeout_penalty: float = 0.05
    #: reassignment pool; when dry, defective writes fail with ``nospare``
    spares: int = 1024

    @property
    def any_faults(self) -> bool:
        return any((self.transient_read_rate, self.transient_write_rate,
                    self.torn_write_rate, self.timeout_rate,
                    self.grown_defect_rate, self.latent_defect_rate))

    def build(self) -> "FaultInjector":
        return FaultInjector(self)


class FaultInjector:
    """Per-machine fault runtime: seeded RNG, defect set, spares, log."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        #: currently defective sectors (grown + latent, until reassigned)
        self.bad_sectors: set[int] = set()
        #: lbn -> spare slot index, SCSI REASSIGN BLOCKS bookkeeping
        self.reassigned: dict[int, int] = {}
        self.spares_left = plan.spares
        self.events: list[FaultEvent] = []
        self.injected = 0

    # -- the drive-facing API ------------------------------------------
    def draw(self, lbn: int, nsectors: int, is_write: bool) -> Optional[Fault]:
        """Decide the fate of one media operation (one RNG draw, plus one
        more for a torn write's prefix length or a fresh defect's site)."""
        plan = self.plan
        bad = self._bad_in_range(lbn, nsectors)
        if bad is not None:
            return Fault(FaultKind.MEDIUM, sectors_applied=bad - lbn,
                         bad_lbn=bad)
        u = self.rng.random()
        if u < plan.timeout_rate:
            return Fault(FaultKind.TIMEOUT)
        u -= plan.timeout_rate
        if is_write:
            if u < plan.transient_write_rate:
                return Fault(FaultKind.TRANSIENT)
            u -= plan.transient_write_rate
            if u < plan.torn_write_rate:
                applied = (self.rng.randrange(1, nsectors)
                           if nsectors > 1 else 0)
                return Fault(FaultKind.TORN, sectors_applied=applied)
            u -= plan.torn_write_rate
            if u < plan.grown_defect_rate:
                bad = lbn + self.rng.randrange(nsectors)
                self.bad_sectors.add(bad)
                return Fault(FaultKind.MEDIUM, sectors_applied=bad - lbn,
                             bad_lbn=bad)
        else:
            if u < plan.transient_read_rate:
                return Fault(FaultKind.TRANSIENT)
            u -= plan.transient_read_rate
            if u < plan.latent_defect_rate:
                bad = lbn + self.rng.randrange(nsectors)
                self.bad_sectors.add(bad)
                return Fault(FaultKind.MEDIUM, sectors_applied=bad - lbn,
                             bad_lbn=bad)
        return None

    def reassign(self, lbn: int) -> bool:
        """SCSI REASSIGN BLOCKS: map *lbn* onto a spare sector.

        The defective physical sector is retired and the logical address
        serves from the spare from now on.  (The store keeps logical
        addressing, so no data relocation is modelled -- the observable
        semantics are 'this LBN works again, its old contents are gone'.)
        Returns False when the spare pool is exhausted.
        """
        if self.spares_left <= 0:
            return False
        self.spares_left -= 1
        self.reassigned[lbn] = len(self.reassigned)
        self.bad_sectors.discard(lbn)
        return True

    # -- event log ------------------------------------------------------
    def log(self, time: float, kind: str, detail: str) -> None:
        self.events.append(FaultEvent(time, kind, detail))

    def degradations(self) -> list[FaultEvent]:
        """Events where a failure became visible above the driver."""
        visible = {"read_eio", "lost_write", "requeue", "redirty",
                   "sync_write_failed", "op_failed", "wedged",
                   "journal_degraded"}
        return [event for event in self.events if event.kind in visible]

    def _bad_in_range(self, lbn: int, nsectors: int) -> Optional[int]:
        bad = self.bad_sectors
        if not bad:
            return None
        for sector in range(lbn, lbn + nsectors):
            if sector in bad:
                return sector
        return None


#: named fault profiles (CLI / CI / crash explorer); all recoverable unless
#: the profile includes latent defects, which surface EIO by design
PROFILES = {
    # every fault class recoverable by retry/remap: the crash explorer uses
    # this so victim workloads never abort mid-run
    "transient": lambda seed: FaultPlan(
        seed=seed, transient_read_rate=0.02, transient_write_rate=0.02,
        torn_write_rate=0.015, timeout_rate=0.005),
    # adds write-discovered grown defects: exercises REASSIGN BLOCKS
    "defects": lambda seed: FaultPlan(
        seed=seed, transient_read_rate=0.01, transient_write_rate=0.01,
        torn_write_rate=0.01, timeout_rate=0.003, grown_defect_rate=0.01),
    # the full gauntlet, latent (data-losing) defects included
    "mixed": lambda seed: FaultPlan(
        seed=seed, transient_read_rate=0.015, transient_write_rate=0.015,
        torn_write_rate=0.01, timeout_rate=0.005, grown_defect_rate=0.01,
        latent_defect_rate=0.004),
    "none": lambda seed: FaultPlan(seed=seed),
}


__all__ = [
    "EIO", "EXHAUSTED", "NOSPARE", "Fault", "FaultEvent", "FaultInjector",
    "FaultKind", "FaultPlan", "MediaError", "PROFILES", "SenseData",
    "is_retryable",
]
