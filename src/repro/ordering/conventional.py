"""Conventional: synchronous writes at every ordering point.

The classic FFS discipline: at each of the four structural changes, the
write that *must* reach the disk first is issued synchronously, so the
process waits out a full mechanical disk access before continuing.  The
final write of each sequence is delayed (section 6.1: "the last write in a
series of metadata updates is asynchronous or delayed").
"""

from __future__ import annotations

from typing import Generator

from repro.ordering.base import AllocContext, OrderingScheme
from repro.ordering.guarantees import CrashGuarantees


class ConventionalScheme(OrderingScheme):
    """Synchronous metadata writes (the paper's baseline implementation)."""

    name = "Conventional"
    uses_block_copy = False  # classic write-lock behaviour
    # synchronous ordering writes: never corrupts; the delayed "last write"
    # of each sequence still admits leaks and link skew until it lands
    declared_guarantees = CrashGuarantees(allows_corruption=False)

    def link_added(self, dp, dbuf, offset, ip, new_inode: bool) -> Generator:
        # rule 3/1: the pointed-to inode reaches disk before the entry
        # (an EIO inside either step must not leave dbuf locked forever)
        ibuf = yield from self._release_on_error(
            self.fs.load_inode_buf(ip.ino), dbuf)
        self.fs.store_inode(ip, ibuf)
        yield from self._release_on_error(self._ordered_wait(  # synchronous
            self.fs.cache.bwrite(ibuf), "sync_stall", point="link_added"),
            dbuf)
        self.fs.cache.bdwrite(dbuf)                # last write: delayed

    def link_removed(self, dp, dbuf, offset, ip) -> Generator:
        # rule 1: the cleared entry reaches disk before the link count drops
        yield from self._ordered_wait(             # synchronous
            self.fs.cache.bwrite(dbuf), "sync_stall", point="link_removed")
        yield from self.fs.drop_link(ip)

    def block_allocated(self, ctx: AllocContext) -> Generator:
        must_init = ctx.is_metadata or self.alloc_init
        moved = bool(ctx.old_daddr) and ctx.old_daddr != ctx.new_daddr
        if moved:
            # rule 2 for fragment extension by move: the relocated pointer
            # reaches disk before the old run can be reused
            yield from self._release_on_error(self._ordered_wait(
                self.fs.flush_inode_sync(ctx.ip), "sync_stall",
                point="frag_move"), ctx.ibuf, ctx.data_buf)
        if ctx.ibuf is not None:
            self.fs.cache.bdwrite(ctx.ibuf)
        if must_init:
            # rule 3: initialize the new block on disk before any pointer
            # to it can land (the pointer writes are delayed, so completing
            # this synchronous write first is sufficient)
            yield from self._ordered_wait(
                self.fs.cache.bwrite(ctx.data_buf), "sync_stall",
                point="block_init")
        else:
            self.fs.cache.brelse(ctx.data_buf)
        if moved:
            self.fs.cache.invalidate(ctx.old_daddr, ctx.old_frags)
            yield from self.fs.allocator.free_frags(ctx.old_daddr,
                                                    ctx.old_frags)

    def release_inode(self, ip) -> Generator:
        # rule 2: nullify every on-disk pointer (synchronously) before the
        # blocks and the inode slot return to the free pool
        runs = yield from self.fs.collect_blocks(ip)
        self.fs.clear_block_pointers(ip)
        ino = ip.ino
        yield from self.fs.free_inode_record(ip)
        ibuf = yield from self.fs.load_inode_buf(ino)
        at = self.fs.geometry.inode_offset_in_block(ino)
        ibuf.data[at:at + 128] = bytes(128)
        yield from self._ordered_wait(             # synchronous reset
            self.fs.cache.bwrite(ibuf), "sync_stall", point="release_inode")
        yield from self.fs.free_block_list(runs)   # bitmaps: delayed
