"""CPU cost model for the simulated 33 MHz i486 (NCR 3433).

Every file-system code path charges CPU through one of these knobs.  The
defaults are calibrated so that the aggregate CPU-time columns of the paper's
tables 1 and 2 and the CPU-bound saturation levels of figure 5 come out in
the right range for a 1994-class processor; see EXPERIMENTS.md for the
calibration notes.

``scale`` multiplies everything: benchmarks use 1.0; image population uses
0.0 (instantaneous setup).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """Per-operation CPU costs in seconds (before ``scale``)."""

    scale: float = 1.0

    #: fixed entry/exit cost of any file system call
    syscall: float = 80e-6
    #: per path component resolved by namei (hashing, locking, inode fetch)
    namei_component: float = 250e-6
    #: per directory entry scanned during lookup / create collision check
    dirent_scan: float = 2.2e-6
    #: creating an inode + directory entry (beyond namei and I/O)
    create: float = 0.014
    #: removing a directory entry + releasing the inode (beyond namei and I/O)
    remove: float = 0.003
    #: per byte moved between user and kernel space (read/write payloads)
    copy_per_byte: float = 0.25e-6
    #: per byte of kernel block copy (the -CB enhancement of section 3.3)
    block_copy_per_byte: float = 0.15e-6
    #: block/fragment allocation bookkeeping (bitmap search etc.)
    alloc: float = 300e-6
    #: block/fragment free bookkeeping
    free: float = 200e-6
    #: buffer cache lookup/locking
    getblk: float = 25e-6
    #: stat(): inode copyout
    stat: float = 200e-6
    #: per directory entry returned by readdir
    readdir_entry: float = 4e-6
    #: allocating/manipulating one soft-updates dependency structure
    softdep: float = 30e-6
    #: per byte charged when the CPU prepares/initiates a disk request
    io_setup: float = 120e-6

    def time(self, name: str, multiplier: float = 1.0) -> float:
        """Scaled cost of one occurrence of *name* (times *multiplier*)."""
        return getattr(self, name) * multiplier * self.scale

    def copy_bytes(self, nbytes: int) -> float:
        """User<->kernel data copy cost."""
        return self.copy_per_byte * nbytes * self.scale

    def block_copy(self, nbytes: int) -> float:
        """Kernel memcpy cost for the -CB write-lock-avoidance copy."""
        return self.block_copy_per_byte * nbytes * self.scale
