"""Unit tests for the seek/rotation/transfer timing model."""

import pytest
from hypothesis import given, strategies as st

from repro.disk import DiskGeometry, DiskParameters


@pytest.fixture
def params():
    return DiskParameters()


@pytest.fixture
def geo():
    return DiskGeometry()


class TestSeek:
    def test_zero_distance_is_free(self, params):
        assert params.seek_time(500, 500) == 0.0

    def test_single_cylinder_seek_near_spec(self, params):
        # HP C2447-class: ~2.5 ms single-cylinder
        assert 0.001 < params.seek_time(0, 1) < 0.005

    def test_average_seek_near_10ms(self, params, geo):
        avg = params.average_seek_time(geo)
        assert 0.007 < avg < 0.013

    def test_full_stroke_near_22ms(self, params, geo):
        full = params.seek_time(0, geo.cylinders - 1)
        assert 0.018 < full < 0.026

    def test_symmetric(self, params):
        assert params.seek_time(10, 900) == params.seek_time(900, 10)

    @given(d1=st.integers(1, 1748), d2=st.integers(1, 1748))
    def test_monotone_in_distance(self, d1, d2):
        params = DiskParameters()
        if d1 <= d2:
            assert params.seek_time(0, d1) <= params.seek_time(0, d2)


class TestRotation:
    def test_rotation_time_5400rpm(self, params):
        assert params.rotation_time == pytest.approx(60.0 / 5400.0)

    def test_delay_zero_when_sector_under_head(self, params, geo):
        # at t=0, sector 0 is just arriving
        assert params.rotational_delay(geo, 0.0, 0) == pytest.approx(0.0)

    def test_delay_wraps_around(self, params, geo):
        period = params.sector_period(geo)
        # just after sector 5 passed, must wait nearly a full revolution
        just_after = 5 * period + 1e-9
        delay = params.rotational_delay(geo, just_after, 5)
        assert delay == pytest.approx(params.rotation_time - 1e-9, abs=1e-6)

    @given(now=st.floats(0, 10, allow_nan=False), sector=st.integers(0, 71))
    def test_delay_bounded_by_one_revolution(self, now, sector):
        params, geo = DiskParameters(), DiskGeometry()
        delay = params.rotational_delay(geo, now, sector)
        assert 0.0 <= delay < params.rotation_time + 1e-12


class TestTransfer:
    def test_media_rate_is_track_per_revolution(self, params, geo):
        per_track = params.transfer_time(geo, geo.sectors_per_track)
        assert per_track == pytest.approx(params.rotation_time)

    def test_sequential_bandwidth_about_3mb_per_s(self, params, geo):
        one_mb_sectors = 1_000_000 // geo.sector_size
        seconds = params.transfer_time(geo, one_mb_sectors)
        bandwidth = 1_000_000 / seconds
        assert 2.5e6 < bandwidth < 4.5e6

    def test_negative_count_rejected(self, params, geo):
        with pytest.raises(ValueError):
            params.transfer_time(geo, -1)

    def test_bus_faster_than_media(self, params, geo):
        assert params.bus_time(geo, 16) < params.transfer_time(geo, 16)
