"""Command-line entry point: ``python -m repro.harness [scale]``.

Runs the headline comparison (tables 1 and 2) at the given scale (default
0.08, a quick look) and prints the paper-style rows.
"""

from __future__ import annotations

import sys

from repro.harness.report import format_table
from repro.harness.runner import (
    FULL_CACHE_BYTES,
    STANDARD_SCHEMES,
    run_copy,
    run_remove,
    standard_scheme_config,
)
from repro.workloads.trees import TreeSpec


def main(argv: list[str]) -> int:
    scale = float(argv[1]) if len(argv) > 1 else 0.08
    tree = TreeSpec().scaled(scale)
    cache = max(1 << 20, int(FULL_CACHE_BYTES * scale))
    print(f"# 4-user copy/remove at scale {scale} "
          f"({tree.files} files, {tree.total_bytes / 1e6:.1f} MB per user)\n")

    for title, runner in (("4-user copy", run_copy),
                          ("4-user remove", run_remove)):
        results = {}
        for name in STANDARD_SCHEMES:
            config = standard_scheme_config(name, cache_bytes=cache)
            results[name] = runner(config, 4, tree)
        base = results["No Order"].elapsed
        rows = [[name, r.elapsed, 100 * r.elapsed / base, r.cpu_time,
                 r.disk_requests, r.io_response_avg * 1000]
                for name, r in results.items()]
        print(format_table(
            f"{title} (simulated seconds)",
            ["Scheme", "Elapsed", "% of No Order", "CPU",
             "Disk requests", "I/O resp (ms)"], rows))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
