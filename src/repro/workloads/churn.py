"""Seeded metadata-churn workloads for crash exploration.

These are not paper benchmarks: they are adversarial workloads whose point
is to keep many *ordering-sensitive* metadata updates in flight at once
(creates, removes, mkdirs, renames), so that a crash at any disk-write
boundary lands in the middle of some ordered sequence.  Everything is
deterministic in the seed -- the crash-exploration engine replays the same
workload many times and crashes it at different instants, so two runs with
the same seed must issue byte-identical operation streams.
"""

from __future__ import annotations

import random
from typing import Generator

from repro.machine import Machine

#: the figure-5 microbenchmark file payload size
MICRO_FILE_SIZE = 1024


def churn_workload(machine: Machine, seed: int = 0,
                   operations: int = 40) -> Generator:
    """A random mix of creates, writes, removes, mkdirs and renames."""
    rng = random.Random(seed)
    live_files: list[str] = []
    live_dirs = ["/"]
    counter = 0
    for _ in range(operations):
        action = rng.random()
        if action < 0.45 or not live_files:
            parent = rng.choice(live_dirs)
            path = f"{parent.rstrip('/')}/f{counter}"
            counter += 1
            size = rng.choice([300, 1024, 5000, 9000, 20000])
            yield from machine.fs.write_file(path, b"d" * size)
            live_files.append(path)
        elif action < 0.70:
            path = live_files.pop(rng.randrange(len(live_files)))
            yield from machine.fs.unlink(path)
        elif action < 0.85 and len(live_dirs) < 5:
            path = f"/dir{counter}"
            counter += 1
            yield from machine.fs.mkdir(path)
            live_dirs.append(path)
        else:
            old = live_files.pop(rng.randrange(len(live_files)))
            new = f"/renamed{counter}"
            counter += 1
            yield from machine.fs.rename(old, new)
            live_files.append(new)


def remove_churn(machine: Machine, seed: int = 0,
                 files: int = 12) -> Generator:
    """Create durable files, then remove them and reuse their fragments.

    The ``sync()`` between phases pins every entry, inode, and data block
    to the media first, so the remove phase's ordering (rule 1: entry
    cleared before the inode frees; rule 2: pointers nullified before the
    fragments are reused) acts on *durable* state -- the window where
    breaking either rule corrupts the image, rather than merely leaking
    an orphan that never hit the platters.

    The reusers (``g*``) are created *before* the removes and therefore
    hold distinct, already-durable inode slots; after each unlink the
    freed fragments are written into the matching reuser and ``fsync``
    forces its claim to the platters at once.  Under a scheme that delays
    the old owner's pointer reset (rule 2 broken), the media now shows two
    inodes claiming the same fragments -- the breach is on disk the
    instant the fsync completes, which is what makes this the mutation-
    test workload for the rule-breaking shim schemes.
    """
    rng = random.Random(seed)
    payload = bytes([seed % 251 or 1]) * 6 * 1024
    yield from machine.fs.mkdir("/rm")
    names = [f"/rm/f{index}" for index in range(files)]
    for name in names:
        yield from machine.fs.write_file(name, payload)
    growers = [f"/rm/g{index}" for index in range(files)]
    for name in growers:
        handle = yield from machine.fs.create(name)
        yield from machine.fs.close(handle)
    yield from machine.fs.sync()
    order = list(range(files))
    rng.shuffle(order)
    for index in order:
        yield from machine.fs.unlink(names[index])
        # reuse the freed fragments under a different, durable inode and
        # force the new claim out immediately
        handle = yield from machine.fs.open(growers[index])
        yield from machine.fs.write(handle, payload)
        yield from machine.fs.fsync(handle)
        yield from machine.fs.close(handle)
    yield from machine.fs.sync()


def reuse_churn(machine: Machine, seed: int = 0,
                files: int = 12) -> Generator:
    """Force cross-inode fragment reuse: the rule-2 torture workload.

    Rule 2 ("never reuse a resource before nullifying all previous
    pointers") only corrupts the media when a *different* inode's claim to
    a freed fragment lands while the old owner's on-disk pointers still
    stand.  Two things normally hide that window in this simulator: the
    allocator's rotor hands out fresh fragments while any remain (freed
    runs are only rediscovered after a wrap), and files created in the
    same directory share a 64-inode block, so one inode-block write
    carries both the old owner's clear and the new owner's claim.

    This workload defeats both, deterministically:

    1. victims (``/a/f*``, one 6-fragment run each) land in directory
       ``/a``'s cylinder group; ballast then fills that group's fresh
       space exactly (the per-victim 2-fragment tail holes cannot host a
       6-run),
    2. the reusers (``/b/g*``) live in directory ``/b`` -- placed in the
       *other* cylinder group by the least-loaded directory policy -- so
       their inode blocks are disjoint from the victims'; ballast fills
       that group completely,
    3. each unlinked victim's run is then the only allocatable 6-run in
       the file system, so the matching reuser's write *must* take it,
       and the ``fsync`` forces the new claim to the platters while a
       rule-2-breaking scheme still holds the old owner's clear dirty.

    Schemes that defer frees (soft updates) get a drain barrier after
    each unlink (``pending_work()``), otherwise the deferred free would
    starve the reuser's allocation; eager schemes -- including the
    rule-breaking shims -- take no barrier, keeping the breach window
    open.  Assumes a multi-cg geometry (the explorer testbed's 2 x 2 MB).
    """
    fs = machine.fs
    geo = fs.geometry
    alloc = fs.allocator
    fpb = geo.frags_per_block
    payload_frags = 6
    payload = bytes([seed % 251 or 1]) * payload_frags * geo.frag_size
    block = bytes([(seed + 1) % 251 or 1]) * geo.block_size

    yield from fs.mkdir("/a")
    ip = yield from fs.namei("/a")
    cg_a = geo.cg_of_inode(ip.ino)
    fs.iput(ip)
    names = [f"/a/f{index}" for index in range(files)]
    for name in names:
        yield from fs.write_file(name, payload)
    # fill cg_a's remaining fresh space; each victim left a 2-frag hole
    # at its block tail, which no 6-run can occupy
    holes = files * (fpb - payload_frags)
    handle = yield from fs.create("/a/ballast")
    while alloc.cg_free_frags[cg_a] - holes >= fpb:
        yield from fs.write(handle, block)
    yield from fs.close(handle)

    yield from fs.mkdir("/b")
    ip = yield from fs.namei("/b")
    cg_b = geo.cg_of_inode(ip.ino)
    fs.iput(ip)
    growers = [f"/b/g{index}" for index in range(files)]
    for name in growers:
        handle = yield from fs.create(name)
        yield from fs.close(handle)
    handle = yield from fs.create("/b/ballast")
    while alloc.cg_free_frags[cg_b] >= fpb:
        yield from fs.write(handle, block)
    yield from fs.close(handle)
    yield from fs.sync()

    rng = random.Random(seed)
    order = list(range(files))
    rng.shuffle(order)
    for index in order:
        yield from fs.unlink(names[index])
        if fs.scheme.pending_work():
            # deferred-free schemes must complete the free before the
            # reuser can allocate; eager schemes keep the window open
            yield from fs.sync()
        handle = yield from fs.open(growers[index])
        yield from fs.write(handle, payload)
        yield from fs.fsync(handle)
        yield from fs.close(handle)
    yield from fs.sync()


def microbench_churn(machine: Machine, seed: int = 0,
                     files: int = 24) -> Generator:
    """Figure-5-shaped churn: create 1 KB files, then remove a slice.

    The create phase exercises rule 3 (inode initialized before the
    directory entry lands); the remove phase exercises rules 1-2 (entry
    cleared before the link drop, pointers reset before reuse).  The seed
    perturbs which files are removed and which survive, so different seeds
    explore different dependency interleavings.
    """
    rng = random.Random(seed)
    payload = bytes([seed % 251]) * MICRO_FILE_SIZE
    yield from machine.fs.mkdir("/micro")
    for index in range(files):
        yield from machine.fs.write_file(f"/micro/f{index}", payload)
    victims = [index for index in range(files) if rng.random() < 0.6]
    for index in victims:
        yield from machine.fs.unlink(f"/micro/f{index}")
    # a short re-create tail: freed inodes/fragments get reused, the
    # classic rule-2 hazard window
    for index in victims[: max(1, len(victims) // 3)]:
        yield from machine.fs.write_file(f"/micro/g{index}", payload)
