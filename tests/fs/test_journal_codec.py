"""The journal's on-disk codec and recovery scan, bytes-in/bytes-out.

A fake frag store (a plain dict) plays the disk; every property the
recovery path depends on is pinned here: header versioning, descriptor
entry packing, the commit checksum refusing torn records, newest-wins
overlay composition, revokes, the end-of-log skip, and replay's
retire-the-log header rewrite.
"""

import pytest

from repro.fs import journal
from repro.fs.layout import FSGeometry, with_journal

GEO = with_journal(FSGeometry(ipg=256, dfrags_per_cg=2048, ncg=2))
FRAG = GEO.frag_size
LOG = GEO.journal_frags - 1
BASE = GEO.journal_start + 1


class FragStore:
    """daddr -> frag bytes, zero-filled where never written."""

    def __init__(self):
        self.frags = {}

    def read(self, daddr, nfrags):
        return b"".join(self.frags.get(daddr + i, bytes(FRAG))
                        for i in range(nfrags))

    def write(self, daddr, data):
        assert len(data) % FRAG == 0
        for i in range(len(data) // FRAG):
            self.frags[daddr + i] = bytes(data[i * FRAG:(i + 1) * FRAG])


def frag_of(byte, tag=0):
    return bytes([byte, tag]) * (FRAG // 2)


def write_txn(store, seq, pos, entries, payload=b""):
    """Lay down one complete record; returns the next (seq, pos)."""
    desc = journal.descriptor_bytes(FRAG, seq, entries)
    store.write(BASE + pos, desc)
    if payload:
        store.write(BASE + pos + 1, payload)
    extent = journal.record_extent(entries)
    store.write(BASE + pos + extent - 1,
                journal.commit_bytes(FRAG, seq,
                                     journal.txn_checksum(desc, payload)))
    pos += extent
    return seq + 1, 0 if pos >= LOG else pos


def fresh(tail_seq=1, tail_pos=0):
    store = FragStore()
    store.write(GEO.journal_start,
                journal.header_bytes(FRAG, tail_seq, tail_pos))
    return store


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
def test_header_roundtrip_and_rejection():
    assert journal.parse_header(journal.header_bytes(FRAG, 7, 42)) == (7, 42)
    assert journal.parse_header(bytes(FRAG)) is None
    assert journal.parse_header(b"\x01") is None
    # wrong version is unreadable, not misread
    bad = bytearray(journal.header_bytes(FRAG, 7, 42))
    bad[4] = 0xEE
    assert journal.parse_header(bytes(bad)) is None


def test_descriptor_roundtrip():
    entries = [journal.Entry(journal.IMAGE, 123, 2),
               journal.Entry(journal.REVOKE, 900, 8)]
    raw = journal.descriptor_bytes(FRAG, 5, entries)
    assert len(raw) == FRAG
    assert journal.parse_descriptor(raw, expect_seq=5) == entries
    # a stale record from an earlier lap never parses as the current one
    assert journal.parse_descriptor(raw, expect_seq=6) is None


def test_descriptor_rejects_overfull_and_bad_runs():
    cap = journal.max_entries(FRAG)
    too_many = [journal.Entry(journal.IMAGE, i, 1) for i in range(cap + 1)]
    with pytest.raises(ValueError):
        journal.descriptor_bytes(FRAG, 1, too_many)
    with pytest.raises(ValueError):
        journal.descriptor_bytes(FRAG, 1, [journal.Entry(journal.IMAGE,
                                                         1, 0)])


def test_commit_checksum_covers_descriptor_and_payload():
    desc = journal.descriptor_bytes(FRAG, 3,
                                    [journal.Entry(journal.IMAGE, 10, 1)])
    payload = frag_of(0xAB)
    checksum = journal.txn_checksum(desc, payload)
    commit = journal.commit_bytes(FRAG, 3, checksum)
    assert journal.commit_valid(commit, 3, checksum)
    assert not journal.commit_valid(commit, 4, checksum)
    assert not journal.commit_valid(commit, 3, checksum ^ 1)
    assert not journal.commit_valid(bytes(FRAG), 3, checksum)


def test_record_extent():
    entries = [journal.Entry(journal.IMAGE, 10, 3),
               journal.Entry(journal.REVOKE, 50, 99),
               journal.Entry(journal.IMAGE, 20, 1)]
    # descriptor + 4 image frags + commit; revokes take no payload room
    assert journal.record_extent(entries) == 6


# ----------------------------------------------------------------------
# scan
# ----------------------------------------------------------------------
def test_scan_empty_log():
    store = fresh()
    result = journal.scan_journal(store.read, GEO)
    assert result.overlay == {}
    assert result.transactions == []
    assert (result.head_seq, result.head_pos) == (1, 0)


def test_scan_applies_committed_transactions_newest_wins():
    store = fresh()
    seq, pos = 1, 0
    seq, pos = write_txn(store, seq, pos,
                         [journal.Entry(journal.IMAGE, 100, 1)],
                         frag_of(0x11))
    seq, pos = write_txn(store, seq, pos,
                         [journal.Entry(journal.IMAGE, 100, 1),
                          journal.Entry(journal.IMAGE, 200, 1)],
                         frag_of(0x22) + frag_of(0x33))
    result = journal.scan_journal(store.read, GEO)
    assert [t.seq for t in result.transactions] == [1, 2]
    assert result.overlay == {100: frag_of(0x22), 200: frag_of(0x33)}
    assert (result.head_seq, result.head_pos) == (seq, pos)


def test_scan_stops_at_torn_commit():
    store = fresh()
    seq, pos = write_txn(store, 1, 0,
                         [journal.Entry(journal.IMAGE, 100, 1)],
                         frag_of(0x11))
    # second record: descriptor + payload durable, commit torn (zeroes)
    desc = journal.descriptor_bytes(FRAG, seq,
                                    [journal.Entry(journal.IMAGE, 200, 1)])
    store.write(BASE + pos, desc)
    store.write(BASE + pos + 1, frag_of(0x22))
    result = journal.scan_journal(store.read, GEO)
    assert result.overlay == {100: frag_of(0x11)}
    assert result.head_seq == seq
    # ...but the torn record's images are reported open (the in-flight
    # transaction the checkpoint-order rule watches)
    assert result.open_frags == frozenset({200})


def test_scan_corrupt_payload_invalidates_commit():
    store = fresh()
    _seq, _pos = write_txn(store, 1, 0,
                           [journal.Entry(journal.IMAGE, 100, 1)],
                           frag_of(0x11))
    store.write(BASE + 1, frag_of(0x99))  # payload flipped after commit
    result = journal.scan_journal(store.read, GEO)
    assert result.overlay == {}
    assert result.transactions == []


def test_revoke_drops_earlier_images():
    store = fresh()
    seq, pos = write_txn(store, 1, 0,
                         [journal.Entry(journal.IMAGE, 100, 1),
                          journal.Entry(journal.IMAGE, 101, 1)],
                         frag_of(0x11) + frag_of(0x12))
    seq, pos = write_txn(store, seq, pos,
                         [journal.Entry(journal.REVOKE, 100, 1)])
    result = journal.scan_journal(store.read, GEO)
    assert result.overlay == {101: frag_of(0x12)}


def test_wrap_skips_to_position_zero():
    """A record that would cross the log end starts at 0 instead, and the
    scanner follows it there."""
    store = fresh(tail_seq=1, tail_pos=LOG - 2)
    # extent 3 > the 2 frags left: the writer skips to 0
    seq, pos = write_txn(store, 1, 0,
                         [journal.Entry(journal.IMAGE, 300, 1)],
                         frag_of(0x44))
    assert (seq, pos) == (2, 3)
    result = journal.scan_journal(store.read, GEO)
    assert result.overlay == {300: frag_of(0x44)}
    assert (result.head_seq, result.head_pos) == (2, 3)


def test_scan_without_journal_region_is_empty():
    plain = FSGeometry(ipg=256, dfrags_per_cg=2048, ncg=2)
    result = journal.scan_journal(FragStore().read, plain)
    assert result.overlay == {} and result.transactions == []


def test_scan_survives_garbage_header():
    store = FragStore()
    store.write(GEO.journal_start, frag_of(0xFF))
    result = journal.scan_journal(store.read, GEO)
    assert result.overlay == {}


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def test_replay_applies_overlay_and_retires_log():
    store = fresh()
    write_txn(store, 1, 0, [journal.Entry(journal.IMAGE, 100, 2)],
              frag_of(0x55) + frag_of(0x56))
    journal.replay_into(store.read, store.write, GEO)
    assert store.read(100, 1) == frag_of(0x55)
    assert store.read(101, 1) == frag_of(0x56)
    # the log is retired: a second scan finds nothing to replay
    again = journal.scan_journal(store.read, GEO)
    assert again.overlay == {} and again.transactions == []
    # and replay is idempotent on the retired image (the header's tail
    # sequence advances -- seqs never repeat -- but no frag is rewritten)
    before = dict(store.frags)
    second = journal.replay_into(store.read, store.write, GEO)
    assert second.overlay == {}
    changed = {daddr for daddr, data in store.frags.items()
               if before.get(daddr) != data}
    assert changed <= {GEO.journal_start}
