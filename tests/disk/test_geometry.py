"""Unit tests for disk geometry and LBN mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.disk import DiskGeometry


@pytest.fixture
def geo():
    return DiskGeometry()


def test_default_capacity_is_about_1gb(geo):
    assert 0.95e9 < geo.capacity_bytes < 1.1e9


def test_lbn_zero_maps_to_origin(geo):
    assert geo.decompose(0) == (0, 0, 0)


def test_consecutive_lbns_are_rotationally_consecutive(geo):
    c0, h0, s0 = geo.decompose(100)
    c1, h1, s1 = geo.decompose(101)
    assert (c0, h0) == (c1, h1)
    assert s1 == s0 + 1


def test_track_boundary_switches_head(geo):
    last_on_track = geo.sectors_per_track - 1
    assert geo.decompose(last_on_track) == (0, 0, last_on_track)
    assert geo.decompose(last_on_track + 1) == (0, 1, 0)


def test_cylinder_boundary(geo):
    spc = geo.sectors_per_cylinder
    assert geo.decompose(spc - 1) == (0, geo.heads - 1, geo.sectors_per_track - 1)
    assert geo.decompose(spc) == (1, 0, 0)


def test_out_of_range_lbn_rejected(geo):
    with pytest.raises(ValueError):
        geo.cylinder_of(-1)
    with pytest.raises(ValueError):
        geo.cylinder_of(geo.total_sectors)


def test_bad_construction_rejected():
    with pytest.raises(ValueError):
        DiskGeometry(cylinders=0)
    with pytest.raises(ValueError):
        DiskGeometry(sector_size=-512)


@given(lbn=st.integers(min_value=0, max_value=DiskGeometry().total_sectors - 1))
def test_decompose_roundtrips(lbn):
    geo = DiskGeometry()
    cylinder, head, sector = geo.decompose(lbn)
    assert geo.lbn_of(cylinder, head, sector) == lbn


@given(cylinder=st.integers(0, 1749), head=st.integers(0, 15),
       sector=st.integers(0, 71))
def test_lbn_of_roundtrips(cylinder, head, sector):
    geo = DiskGeometry()
    lbn = geo.lbn_of(cylinder, head, sector)
    assert geo.decompose(lbn) == (cylinder, head, sector)
