"""The differential harness: online monitor vs post-crash fsck.

The tentpole's proof obligation, in two halves:

**Agreement.** For every media-resident scheme x fault profile, one sweep
runs both verifiers on the same recording -- the monitor watching the
commit stream live, fsck auditing the synthesized image at every crash
point -- and their *verdicts* must agree: the monitor reports an
unexpected ordering violation if and only if the crash sweep finds a
point outside the scheme's declaration.  Safe schemes: both clean.
``noorder``: both fire, both within the declaration.  The rule-breaking
shims: both breach.

**Mutations.** Each shim scheme delays or forces exactly one ordered
write (the classic fault-injection mutant); the monitor must catch it at
commit time with the *correct rule* and a real window attribution, the
sweep's fsck must see the same corruption on the media, and the report
must refuse to exit 0.  A monitor that never fires, or fires with the
wrong rule, fails here -- this is the test of the tests.

Tier-1 runs budgeted sweeps; ``-m slow`` runs the full crash-point
sweeps the weekly CI job is about.
"""

import pytest

from repro.integrity.explorer import explore
from repro.integrity.monitor import RULES
from repro.ordering.registry import REGISTRY
from repro.ordering.shims import SHIMS

#: every registered scheme whose crash state lives on the platters (nvram
#: keeps survivors in battery-backed memory); derived from the registry so
#: a newly registered scheme is under differential test automatically
MEDIA_SCHEMES = [slug for slug, info in REGISTRY.items()
                 if getattr(info.cls, "apply_to_image", None) is None]
#: fault dimension: perfect disk, recoverable transients, transients +
#: recoverable write-path defects (profiles with latent defects would
#: abort the victim workload itself and test the fault harness, not the
#: monitor)
PROFILES = [None, "transient", "mixed"]

#: shim scheme -> (workload that trips it, the rule it must be booked
#: under).  rule 1/3 breaches need durable entries being removed; rule 2
#: needs cross-inode fragment reuse, which only the ``reuse`` workload
#: forces deterministically (see repro.workloads.churn.reuse_churn).
MUTATIONS = [
    ("shim-rule1", "remove", "free-while-referenced"),
    ("shim-rule2", "reuse", "reuse-before-nullify"),
    ("shim-rule3", "remove", "dirent-uninitialized"),
]


def sweep(scheme, workload="microbench", profile=None, seed=0,
          max_points=40, **kwargs):
    return explore(scheme, workload, seed=seed, jobs=1,
                   max_points=max_points, monitor=True,
                   fault_profile=profile, fault_seed=3, **kwargs)


def assert_verdicts_agree(report):
    __tracebacks__ = False
    monitor_breach = bool(report.monitor_unexpected)
    fsck_breach = bool(report.unexpected_findings)
    assert monitor_breach == fsck_breach, (
        f"{report.scheme}/{report.fault_profile}: monitor says "
        f"{'breach' if monitor_breach else 'clean'} "
        f"({[v.format() for v in report.monitor_unexpected][:3]}), fsck "
        f"says {'breach' if fsck_breach else 'clean'} "
        f"({[(f.index, f.label) for f in report.unexpected_findings][:3]})")
    assert report.exit_status == (1 if monitor_breach else 0)


class TestDifferential:
    @pytest.mark.parametrize("profile", PROFILES,
                             ids=["none", "transient", "mixed"])
    @pytest.mark.parametrize("scheme", MEDIA_SCHEMES)
    def test_monitor_agrees_with_fsck(self, scheme, profile):
        report = sweep(scheme, profile=profile)
        assert report.monitor == "online"
        assert report.monitor_windows > 0
        assert_verdicts_agree(report)
        # the paper's schemes all honour their declarations: both clean
        assert not report.monitor_unexpected

    @pytest.mark.parametrize("scheme,workload,rule", MUTATIONS)
    def test_shims_breach_both_verifiers(self, scheme, workload, rule):
        report = sweep(scheme, workload=workload, max_points=60)
        assert report.monitor_unexpected and report.unexpected_findings
        assert_verdicts_agree(report)
        assert rule in {v.rule for v in report.monitor_unexpected}


class TestMutationAttribution:
    """The monitor's finding must carry enough to reproduce the breach."""

    @pytest.mark.parametrize("scheme,workload,rule", MUTATIONS)
    def test_rule_and_window_attribution(self, scheme, workload, rule):
        report = sweep(scheme, workload=workload, max_points=1)
        hits = [v for v in report.monitor_unexpected if v.rule == rule]
        assert hits, (
            f"{scheme} must be booked under {rule!r}, got "
            f"{sorted({v.rule for v in report.monitor_unexpected})}")
        for violation in hits:
            assert violation.rule in RULES
            # a real window inside the recorded run, not a placeholder
            assert violation.nsectors > 0
            assert violation.lbn >= 0
            assert 0.0 < violation.when <= report.quiesce_time
            assert not violation.expected
            assert "[UNEXPECTED]" in violation.format()
        assert report.exit_status == 1

    def test_shim_rules_cover_all_three_paper_rules(self):
        # the mutation set is complete: one shim per ordering rule
        assert {rule for _s, (_c, rule) in SHIMS.items()} == {
            "free-while-referenced", "reuse-before-nullify",
            "dirent-uninitialized"}
        assert [name for name, _w, _r in MUTATIONS] == sorted(SHIMS)


@pytest.mark.slow
class TestDifferentialFullSweeps:
    """Every crash boundary, every media-resident scheme x profile."""

    @pytest.mark.parametrize("profile", PROFILES,
                             ids=["none", "transient", "mixed"])
    @pytest.mark.parametrize("scheme", MEDIA_SCHEMES)
    def test_full_sweep_agreement(self, scheme, profile):
        report = sweep(scheme, profile=profile, max_points=None)
        assert report.points == report.enumerated_points > 0
        assert_verdicts_agree(report)
        assert not report.monitor_unexpected

    @pytest.mark.parametrize("scheme,workload,rule", MUTATIONS)
    def test_full_sweep_mutations(self, scheme, workload, rule):
        report = sweep(scheme, workload=workload, max_points=None)
        assert rule in {v.rule for v in report.monitor_unexpected}
        assert report.unexpected_findings
        assert report.exit_status == 1
