"""On-board segmented read cache with sequential prefetch.

The paper's drive "prefetches sequentially into its on-board cache".  We model
a small number of LRU segments, each holding one contiguous LBN run.  A read
that falls entirely inside a segment is a cache hit and transfers at bus
speed.  After a media read the segment covers the read plus a prefetch run
(the firmware keeps reading ahead; we credit the prefetch as complete, a mild
optimism that only helps sequential reads, which all schemes enjoy equally).
Writes invalidate overlapping cached ranges (write-through, no write cache,
matching the paper's "writes complete at the media" reliability stance).
"""

from __future__ import annotations

from collections import OrderedDict


class PrefetchCache:
    """Segmented LRU read cache keyed by contiguous LBN ranges."""

    def __init__(self, segments: int = 2, prefetch_sectors: int = 64,
                 total_sectors: int = 0) -> None:
        if segments < 0:
            raise ValueError("segment count must be non-negative")
        self.segment_count = segments
        self.prefetch_sectors = prefetch_sectors
        self.total_sectors = total_sectors
        # segment id -> (start, end) half-open LBN range; ordered LRU->MRU
        self._segments: OrderedDict[int, tuple[int, int]] = OrderedDict()
        self._next_id = 0
        self.hits = 0
        self.misses = 0

    def lookup(self, lbn: int, nsectors: int) -> bool:
        """True (and LRU-refresh) if ``[lbn, lbn+nsectors)`` is fully cached."""
        for seg_id, (start, end) in self._segments.items():
            if start <= lbn and lbn + nsectors <= end:
                self._segments.move_to_end(seg_id)
                self.hits += 1
                return True
        self.misses += 1
        return False

    def insert_after_read(self, lbn: int, nsectors: int) -> None:
        """Record a media read: segment covers the read plus the prefetch run."""
        if self.segment_count == 0:
            return
        end = lbn + nsectors + self.prefetch_sectors
        if self.total_sectors:
            end = min(end, self.total_sectors)
        # extend an existing segment if this read continues it sequentially
        for seg_id, (start, seg_end) in self._segments.items():
            if start <= lbn <= seg_end:
                self._segments[seg_id] = (start, max(seg_end, end))
                self._segments.move_to_end(seg_id)
                return
        self._segments[self._next_id] = (lbn, end)
        self._next_id += 1
        while len(self._segments) > self.segment_count:
            self._segments.popitem(last=False)

    def invalidate(self, lbn: int, nsectors: int) -> None:
        """Drop any segment overlapping a written range (write-through)."""
        lo, hi = lbn, lbn + nsectors
        doomed = [seg_id for seg_id, (start, end) in self._segments.items()
                  if start < hi and lo < end]
        for seg_id in doomed:
            del self._segments[seg_id]

    @property
    def segments(self) -> list[tuple[int, int]]:
        """Current cached ranges, LRU first (for tests/inspection)."""
        return list(self._segments.values())
