"""The run ledger + snapshot digests, and obs edge cases the observatory
leans on: empty-trace exports and snapshot folding across fork workers."""

import json
import os

from repro.harness.parallel import run_grid
from repro.obs import (
    append_ledger,
    flame_summary,
    host_facts,
    ledger_path,
    read_ledger,
    snapshot_digest,
    trace_events,
    validate_trace_events,
)
from tests.conftest import make_machine, run_user


class TestHostFacts:
    def test_shape(self):
        facts = host_facts()
        assert facts["cpus"] == (os.cpu_count() or 1)
        assert isinstance(facts["numpy"], bool)
        assert facts["platform"]
        assert facts["python"].count(".") == 2


class TestSnapshotDigest:
    def test_insensitive_to_key_order(self):
        assert snapshot_digest({"a": 1, "b": 2.5}) \
            == snapshot_digest({"b": 2.5, "a": 1})

    def test_sensitive_to_values(self):
        assert snapshot_digest({"a": 1}) != snapshot_digest({"a": 2})

    def test_short_stable_hex(self):
        digest = snapshot_digest({"engine.events": 123})
        assert len(digest) == 12
        assert digest == snapshot_digest({"engine.events": 123})


class TestLedgerPath:
    def test_default_under_results(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert ledger_path().name == "ledger.jsonl"

    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "l.jsonl"))
        assert ledger_path() == tmp_path / "l.jsonl"

    def test_off_disables(self, monkeypatch):
        for off in ("off", "none", "0", ""):
            monkeypatch.setenv("REPRO_LEDGER", off)
            assert ledger_path() is None


class TestAppendLedger:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        record = append_ledger("bench", {"scale": 0.1}, path=path)
        assert record["cmd"] == "bench"
        assert record["scale"] == 0.1
        assert record["host"]["cpus"] == (os.cpu_count() or 1)
        append_ledger("trace", {"scheme": "Soft Updates"}, path=path)
        records = read_ledger(path)
        assert [r["cmd"] for r in records] == ["bench", "trace"]

    def test_disabled_writes_nothing(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER", "off")
        assert append_ledger("bench", {"scale": 0.1}) is None
        assert read_ledger(tmp_path / "missing.jsonl") == []

    def test_read_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_ledger("a", path=path)
        with path.open("a") as fh:
            fh.write("{torn write\n")
        append_ledger("b", path=path)
        assert [r["cmd"] for r in read_ledger(path)] == ["a", "b"]


def _ledger_cell(index, path):
    record = append_ledger("cell", {"index": index}, path=path)
    return record["index"]


class TestLedgerUnderConcurrency:
    def test_grid_cells_append_without_interleaving(self, tmp_path):
        """O_APPEND single-write appends from fork-pool workers never tear:
        every line parses and every cell's record is present."""
        path = tmp_path / "ledger.jsonl"
        import functools
        cells = [(i, functools.partial(_ledger_cell, i, path))
                 for i in range(8)]
        results = run_grid("ledger-concurrency", cells, jobs=4)
        assert sorted(results.values()) == list(range(8))
        records = read_ledger(path)
        assert sorted(r["index"] for r in records) == list(range(8))
        # and the raw file is intact line-by-line JSON
        for line in path.read_text().splitlines():
            json.loads(line)


def _observed_cell(scheme_name):
    machine = make_machine(scheme_name, observe=True)

    def user():
        yield from machine.fs.write_file("/f", b"x" * 4096)
        yield from machine.fs.sync()

    run_user(machine, user())
    return machine.obs.snapshot()


class TestSnapshotAcrossWorkers:
    def test_worker_snapshots_fold_home_deterministically(self):
        """obs.snapshot() taken inside fork-pool workers crosses the pipe
        intact and matches the same cell run in-process."""
        import functools
        cells = [((name, i), functools.partial(_observed_cell, name))
                 for i, name in enumerate(["softupdates", "conventional",
                                           "softupdates", "conventional"])]
        results = run_grid("snapshot-fold", cells, jobs=2)
        local = {name: _observed_cell(name)
                 for name in ("softupdates", "conventional")}
        for (name, _i), snapshot in results.items():
            assert snapshot["engine.events"] > 0
            assert snapshot == local[name]
            assert snapshot_digest(snapshot) == snapshot_digest(local[name])


class TestEmptyTraceExports:
    def test_flame_summary_on_empty_trace(self):
        machine = make_machine("softupdates", observe=True)
        machine.obs.tracer.spans.clear()
        summary = flame_summary(machine.obs, label="empty")
        assert "Flame summary: empty" in summary
        assert "Category totals" in summary

    def test_chrome_export_on_empty_trace(self):
        machine = make_machine("softupdates", observe=True)
        machine.obs.tracer.spans.clear()
        document = trace_events(machine.obs, label="empty")
        validate_trace_events(document)
