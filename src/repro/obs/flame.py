"""Plain-text flame summary: where simulated time went, per track.

For every track the sync spans form a forest (the tracer guarantees proper
nesting); this module folds it into ``path -> (total, self, count)``
aggregates -- the text analogue of a flame graph -- and computes *coverage*:
the fraction of the track's active interval attributed to top-level spans.
The harness asserts coverage stays >= 95% on user tracks, so a future layer
that forgets to open spans shows up as a failed benchmark, not as silently
missing data.

Async spans (driver queue residencies) overlap and are reported as category
totals only, not folded into the nesting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.session import Observability
    from repro.obs.tracer import Span


@dataclass
class PathStat:
    """Aggregate for one name-path (e.g. ``syscall.create;cache.bread``)."""

    total: float = 0.0
    self_time: float = 0.0
    count: int = 0


@dataclass
class TrackSummary:
    """One track's folded spans and coverage."""

    track: str
    first: float = 0.0
    last: float = 0.0
    covered: float = 0.0
    paths: dict = field(default_factory=dict)   # path tuple -> PathStat

    @property
    def active(self) -> float:
        return max(0.0, self.last - self.first)

    @property
    def coverage(self) -> float:
        """Fraction of [first span begin, last span end] under a top-level
        span; 1.0 for an empty track."""
        return self.covered / self.active if self.active > 0 else 1.0


def _fold_track(track: str, spans: list) -> TrackSummary:
    """Fold one track's closed sync spans (begin-ordered) into paths."""
    summary = TrackSummary(track=track)
    if not spans:
        return summary
    spans = sorted(spans, key=lambda s: (s.start, -s.end, s.id))
    summary.first = spans[0].start
    summary.last = max(span.end for span in spans)
    by_id = {span.id: span for span in spans}
    path_of: dict[int, tuple] = {}
    child_time: dict[int, float] = {}
    for span in spans:
        parent = by_id.get(span.parent) if span.parent is not None else None
        if parent is None:
            path = (span.name,)
            summary.covered += span.duration
        else:
            path = path_of[parent.id] + (span.name,)
            child_time[parent.id] = child_time.get(parent.id, 0.0) \
                + span.duration
        path_of[span.id] = path
        stat = summary.paths.setdefault(path, PathStat())
        stat.total += span.duration
        stat.count += 1
    for span in spans:
        stat = summary.paths[path_of[span.id]]
        stat.self_time += max(0.0, span.duration
                              - child_time.get(span.id, 0.0))
    return summary


def summarize(obs: "Observability") -> dict[str, TrackSummary]:
    """Fold every track; async spans contribute only to category totals."""
    sync_by_track: dict[str, list] = {}
    for span in obs.tracer.spans:
        if span.closed and span.async_id is None:
            sync_by_track.setdefault(span.track, []).append(span)
    return {track: _fold_track(track, spans)
            for track, spans in sync_by_track.items()}


def coverage(obs: "Observability",
             tracks: list[str] | None = None) -> dict[str, float]:
    """Coverage fraction per track (optionally restricted to *tracks*)."""
    summaries = summarize(obs)
    if tracks is not None:
        summaries = {track: summary for track, summary in summaries.items()
                     if track in tracks}
    return {track: summary.coverage
            for track, summary in summaries.items()}


def category_totals(obs: "Observability") -> dict[str, tuple[float, int]]:
    """``category -> (total seconds, span count)`` over all closed spans."""
    totals: dict[str, tuple[float, int]] = {}
    for span in obs.tracer.spans:
        if not span.closed:
            continue
        total, count = totals.get(span.cat, (0.0, 0))
        totals[span.cat] = (total + span.duration, count + 1)
    return totals


def flame_summary(obs: "Observability", label: str = "",
                  max_paths: int = 40) -> str:
    """The human-readable report written next to each exported trace."""
    lines: list[str] = []
    title = f"Flame summary{': ' + label if label else ''}"
    lines.append(title)
    lines.append("=" * len(title))
    lines.append("")
    dropped = getattr(obs.tracer, "dropped", 0)
    if dropped:
        lines.append(f"WARNING: {dropped} spans dropped at the "
                     f"{obs.tracer.max_spans}-span cap -- totals below "
                     f"undercount (raise REPRO_TRACE_MAX_SPANS, or rely "
                     f"on the profile.* metrics, which keep counting "
                     f"past the cap)")
        lines.append("")
    lines.append("Category totals (simulated seconds):")
    for cat, (total, count) in sorted(category_totals(obs).items(),
                                      key=lambda kv: -kv[1][0]):
        lines.append(f"  {cat:<14} {total:12.6f}s  {count:8d} spans")
    for track, summary in summarize(obs).items():
        lines.append("")
        lines.append(f"Track {track}: {summary.active:.6f}s active, "
                     f"{100 * summary.coverage:.1f}% under named spans")
        ranked = sorted(summary.paths.items(),
                        key=lambda kv: -kv[1].total)[:max_paths]
        for path, stat in ranked:
            indent = "  " * len(path)
            lines.append(
                f"{indent}{path[-1]:<28} total {stat.total:10.6f}s  "
                f"self {stat.self_time:10.6f}s  x{stat.count}")
    metrics = obs.snapshot()
    if metrics:
        lines.append("")
        lines.append("Metrics:")
        for name in sorted(metrics):
            value = metrics[name]
            rendered = f"{value:.6f}" if isinstance(value, float) \
                else str(value)
            lines.append(f"  {name:<32} {rendered}")
    return "\n".join(lines)
