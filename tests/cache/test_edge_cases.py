"""Buffer cache edge cases: invalidation races, memory accounting."""

import pytest

from tests.cache.conftest import CacheRig


class TestInvalidateDuringIO:
    def test_invalidate_while_write_outstanding_keeps_identity(self):
        rig = CacheRig(block_copy=True)

        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            buf.data[:] = b"\x41" * 1024
            buf.valid = True
            request = yield from rig.cache.bawrite(buf)
            # freed while the write is still in flight
            rig.cache.invalidate(10, 1)
            assert rig.cache.peek(10) is not None  # identity kept
            assert not rig.cache.peek(10).valid
            yield request.done
            yield rig.engine.timeout(0.001)

        rig.run(body())
        # once the write lands the buffer can be reclaimed normally
        assert rig.cache.peek(10) is None \
            or not rig.cache.peek(10).write_outstanding

    def test_reuse_after_invalidate_gets_fresh_buffer(self):
        rig = CacheRig()

        def body():
            buf = yield from rig.cache.getblk(10, 2048)
            buf.data[:] = b"\x42" * 2048
            rig.cache.bdwrite(buf)
            rig.cache.invalidate(10, 2)
            # reallocation at a different size must not trip the size check
            buf = yield from rig.cache.getblk(10, 1024)
            assert buf.size == 1024
            assert not buf.valid
            rig.cache.brelse(buf)

        rig.run(body())


class TestInflightAccounting:
    def test_inflight_bytes_tracked_with_block_copy(self):
        rig = CacheRig(block_copy=True)

        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            buf.valid = True
            request = yield from rig.cache.bawrite(buf)
            assert rig.cache.inflight_bytes == 1024
            yield request.done
            yield rig.engine.timeout(0.001)
            assert rig.cache.inflight_bytes == 0

        rig.run(body())

    def test_no_inflight_accounting_without_block_copy(self):
        rig = CacheRig(block_copy=False)

        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            buf.valid = True
            request = yield from rig.cache.bawrite(buf)
            assert rig.cache.inflight_bytes == 0  # the buffer IS the source
            yield request.done

        rig.run(body())

    def test_queued_copies_throttle_new_buffers(self):
        """With -CB, unbounded async writes must hit the memory wall."""
        rig = CacheRig(block_copy=True, capacity_bytes=8 * 1024)

        def body():
            # queue more write copies than memory allows; getblk must wait
            # for completions rather than overcommit
            for daddr in range(0, 20 * 8, 8):
                buf = yield from rig.cache.getblk(daddr, 1024)
                buf.data[:] = bytes([daddr % 251]) * 1024
                buf.valid = True
                yield from rig.cache.bawrite(buf)
            yield from rig.cache.sync()

        rig.run(body())
        assert rig.cache.used_bytes + rig.cache.inflight_bytes <= 8 * 1024
        for daddr in range(0, 20 * 8, 8):
            assert rig.disk.storage.read(daddr * 2, 2) \
                == bytes([daddr % 251]) * 1024


class TestSyncerInteraction:
    def test_pinned_buffers_never_evicted_under_pressure(self):
        rig = CacheRig(capacity_bytes=4 * 1024)

        def body():
            pinned = yield from rig.cache.getblk(0, 1024)
            pinned.data[:] = b"\x77" * 1024
            pinned.hold_count += 1
            rig.cache.bdwrite(pinned)
            for daddr in range(8, 100, 8):
                buf = yield from rig.cache.bread(daddr, 1024)
                rig.cache.brelse(buf)
            return pinned

        pinned = rig.run(body())
        assert rig.cache.peek(0) is pinned
        assert bytes(pinned.data) == b"\x77" * 1024
