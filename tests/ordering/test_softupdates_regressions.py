"""Regression tests for subtle soft-updates timing bugs."""

from tests.conftest import make_machine, run_user


def test_dependency_recorded_while_buffer_write_in_flight():
    """A buffer can acquire its first dependency while an earlier write of
    it is already on the media.  That write was snapshotted before tracking,
    so its completion must satisfy nothing (regression: the post-write hook
    popped an empty in-flight queue, killing the driver process and
    livelocking the whole machine).
    """
    m = make_machine("softupdates")

    def setup():
        yield from m.fs.write_file("/a", b"a" * 512)
        yield from m.fs.sync()
        # dirty the (now untracked) inode block with a plain update
        handle = yield from m.fs.open("/a")
        yield from m.fs.close(handle)

    run_user(m, setup())
    geo = m.fs.geometry
    ino = max(i.ino for i in m.fs.itable.values())
    ibuf = m.cache.peek(geo.inode_block_daddr(ino))
    assert ibuf is not None and ibuf.dirty
    request = m.cache.start_flush(ibuf)
    assert request is not None

    # while that write is in flight, create a file whose inode lives in the
    # same block: record_add tracks the buffer mid-flight
    def racer():
        yield from m.fs.write_file("/b", b"b" * 512)
        yield from m.fs.sync()
        data = yield from m.fs.read_file("/b")
        return data

    assert run_user(m, racer()) == b"b" * 512
    assert m.scheme.pending_work() == 0
    from repro.integrity import fsck
    from tests.conftest import SMALL_GEOMETRY
    report = fsck(m.disk.storage, SMALL_GEOMETRY)
    assert report.clean and not report.warnings


def test_no_empty_dependency_anchors_accumulate():
    """Dependency anchors must be reclaimed once their lists empty."""
    m = make_machine("softupdates")

    def churn():
        for index in range(40):
            yield from m.fs.write_file(f"/f{index}", b"x" * 1024)
            yield from m.fs.unlink(f"/f{index}")
        yield from m.fs.sync()

    run_user(m, churn())
    manager = m.scheme.manager
    assert not manager.inodedeps
    assert not manager.pagedeps
    assert not manager.indirdeps
    assert not manager.allocsafe
    assert not manager.tracked


def test_unawaited_process_crash_is_loud():
    """A crashing daemon must surface at the engine, not deadlock."""
    import pytest
    from repro.sim import Engine, ProcessCrashed

    eng = Engine()

    def daemon():
        yield eng.timeout(1.0)
        raise RuntimeError("daemon bug")

    eng.process(daemon())  # nobody joins it

    def innocent():
        yield eng.timeout(10.0)
        return "done"

    victim = eng.process(innocent())
    with pytest.raises(ProcessCrashed, match="daemon bug"):
        eng.run_until(victim)
