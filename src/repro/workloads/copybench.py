"""The N-user copy and N-user remove benchmarks (section 2).

"In the N-user copy benchmark, each 'user' concurrently performs a recursive
copy of a separate directory tree ...  In the N-user remove benchmark, each
'user' deletes one newly copied directory tree."

Copies read through the file system (cp-style 8 KB chunks), so the source
tree's data and metadata reads compete with the destination's writes, as on
the paper's testbed.
"""

from __future__ import annotations

from typing import Generator

from repro.machine import Machine
from repro.workloads.trees import TreeSpec, build_tree


def populate_sources(machine: Machine, users: int,
                     spec: TreeSpec) -> None:
    """Build one source tree per user (instantaneous, then cold cache)."""

    def builder() -> Generator:
        for user in range(users):
            yield from build_tree(machine.fs, f"/src{user}", spec)
        for user in range(users):
            yield from machine.fs.mkdir(f"/u{user}")

    machine.populate(builder())


def copy_tree_user(machine: Machine, user: int,
                   chunk: int = 8192) -> Generator:
    """Recursively copy ``/src<user>`` to ``/u<user>/tree``."""
    fs = machine.fs
    yield from _copy_dir(fs, f"/src{user}", f"/u{user}/tree", chunk)


def _copy_dir(fs, source: str, dest: str, chunk: int) -> Generator:
    yield from fs.mkdir(dest)
    names = yield from fs.readdir(source)
    for name in names:
        src_path = f"{source}/{name}"
        dst_path = f"{dest}/{name}"
        attrs = yield from fs.stat(src_path)
        if attrs.ftype.name == "DIRECTORY":
            yield from _copy_dir(fs, src_path, dst_path, chunk)
        else:
            src = yield from fs.open(src_path)
            dst = yield from fs.create(dst_path)
            while True:
                data = yield from fs.read(src, chunk)
                if not data:
                    break
                yield from fs.write(dst, data)
            yield from fs.close(src)
            yield from fs.close(dst)


def remove_tree_user(machine: Machine, user: int) -> Generator:
    """Recursively delete ``/u<user>/tree``."""
    yield from _remove_dir(machine.fs, f"/u{user}/tree")


def _remove_dir(fs, path: str) -> Generator:
    names = yield from fs.readdir(path)
    for name in names:
        child = f"{path}/{name}"
        attrs = yield from fs.stat(child)
        if attrs.ftype.name == "DIRECTORY":
            yield from _remove_dir(fs, child)
        else:
            yield from fs.unlink(child)
    yield from fs.rmdir(path)
