"""Figure 2: ordering-flag semantics, 1-user remove.

Paper finding: the exception to "less restrictive is faster".  The removal
issues a burst of ordered writes; a huge queue forms (driver response times
of 5+ seconds).  With -NR, reads bypass that queue, so the user process
barely waits -- and *more* restrictive semantics then give better
user-observed response because fewer requests compete with the reads.
Without -NR (plain Part), the user's reads sit behind the queue.
"""

from repro.driver import FlagSemantics
from repro.harness.report import format_table
from repro.harness.runner import flag_variant, run_remove
from repro.workloads.trees import TreeSpec

from benchmarks.conftest import SCALE, emit, run_grid, scaled_cache

VARIANTS = [
    ("Part", FlagSemantics.PART, False),
    ("Full-NR", FlagSemantics.FULL, True),
    ("Back-NR", FlagSemantics.BACK, True),
    ("Part-NR", FlagSemantics.PART, True),
    ("Ignore", FlagSemantics.IGNORE, False),
]


def test_fig2_flag_semantics_remove(once):
    tree = TreeSpec().scaled(SCALE)

    def cell(label, semantics, bypass):
        def run():
            config = flag_variant(semantics, bypass, block_copy=True,
                                  cache_bytes=scaled_cache())
            # cold cache: earlier activity pushed the tree's metadata out
            # of memory, so removal issues the reads this figure is about
            return run_remove(config, users=1, tree=tree,
                              label=label, cold_cache=True)
        return label, run

    def experiment():
        return run_grid("fig2_flag_semantics_remove",
                        [cell(*variant) for variant in VARIANTS])

    results = once(experiment)
    rows = [[label, r.elapsed, r.driver_response_avg * 1000, r.disk_requests]
            for label, r in results.items()]
    emit("fig2_flag_semantics_remove", format_table(
        "Figure 2: ordering flag semantics, 1-user remove "
        f"(scale={SCALE}, simulated seconds)",
        ["Flag meaning", "Elapsed (s)", "Avg driver response (ms)",
         "Disk requests"], rows))

    elapsed = {label: r.elapsed for label, r in results.items()}
    response = {label: r.driver_response_avg for label, r in results.items()}
    # the -NR variants finish well before plain Part: reads bypass the queue
    assert elapsed["Part-NR"] < elapsed["Part"] * 0.9
    assert elapsed["Full-NR"] <= elapsed["Part"] * 0.9
    # figure 2b's inversion: with -NR the held-back writes queue up, so the
    # *driver response* average is much larger even though the user is fast
    assert response["Part-NR"] > 2 * response["Part"]
