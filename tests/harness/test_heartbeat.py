"""Sweep telemetry: heartbeat progress lines and stall detection on the
fork-pool grid, and their pure-observer contract (identical results)."""

import functools
import time

import pytest

from repro.harness.parallel import (
    GridStallError,
    Heartbeat,
    heartbeat_interval,
    run_grid,
    stall_timeout,
)


def quick_cell(value):
    return value * 2


def dawdle_cell(value, seconds):
    time.sleep(seconds)
    return value * 2


def wedge_cell(value, key):
    if value == key:
        time.sleep(30.0)
    return value * 2


class TestEnvDefaults:
    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
        monkeypatch.delenv("REPRO_STALL_TIMEOUT", raising=False)
        assert heartbeat_interval() == 0.0
        assert stall_timeout() == 0.0

    def test_seconds_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT", "2.5")
        monkeypatch.setenv("REPRO_STALL_TIMEOUT", "60")
        assert heartbeat_interval() == 2.5
        assert stall_timeout() == 60.0

    def test_garbage_and_negatives_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT", "soon")
        monkeypatch.setenv("REPRO_STALL_TIMEOUT", "-3")
        assert heartbeat_interval() == 0.0
        assert stall_timeout() == 0.0

    def test_inactive_monitor(self):
        assert not Heartbeat(name="g", labels=[]).active
        assert Heartbeat(name="g", labels=[], interval=0.1).active
        assert Heartbeat(name="g", labels=[], timeout=5.0).active


class TestHeartbeat:
    def test_progress_lines_emitted(self):
        lines = []
        cells = [(i, functools.partial(dawdle_cell, i, 0.25))
                 for i in range(4)]
        results = run_grid("pulse", cells, jobs=2, heartbeat=0.05,
                           on_heartbeat=lines.append)
        assert results == {i: i * 2 for i in range(4)}
        assert lines
        assert all(line.startswith("[grid pulse]") for line in lines)
        assert any("in flight" in line for line in lines)
        assert any("eta" in line or "0/4" in line for line in lines)

    def test_monitored_results_identical_to_silent(self):
        cells = [((i, "cfg"), functools.partial(quick_cell, i))
                 for i in range(6)]
        silent = run_grid("silent", cells, jobs=2)
        monitored = run_grid("monitored", cells, jobs=2, heartbeat=0.01,
                             stall=60.0, on_heartbeat=lambda line: None)
        assert monitored == silent

    def test_serial_path_ignores_heartbeat(self):
        lines = []
        cells = [(i, functools.partial(quick_cell, i)) for i in range(3)]
        results = run_grid("serial", cells, jobs=1, heartbeat=0.001,
                           on_heartbeat=lines.append)
        assert results == {i: i * 2 for i in range(3)}
        assert lines == []


class TestStallDetection:
    def test_wedged_cell_named_and_aborts(self):
        """One worker wedges; the sweep aborts promptly, naming the stuck
        (scheme, config) key instead of hanging forever."""
        keys = [("softupdates", "mixed", i) for i in range(4)]
        wedged = keys[2]
        cells = [(key, functools.partial(wedge_cell, key, wedged))
                 for key in keys]
        begun = time.time()
        with pytest.raises(GridStallError) as excinfo:
            run_grid("wedge", cells, jobs=2, stall=0.5)
        assert time.time() - begun < 10.0
        error = excinfo.value
        assert error.key == str(wedged)
        assert str(wedged) in str(error)
        assert "stalled" in str(error)
        assert error.timeout == 0.5

    def test_slow_but_moving_grid_survives(self):
        cells = [(i, functools.partial(dawdle_cell, i, 0.1))
                 for i in range(4)]
        results = run_grid("slow", cells, jobs=2, stall=5.0)
        assert results == {i: i * 2 for i in range(4)}


class TestExplorerHeartbeat:
    @pytest.mark.slow
    def test_monitored_sweep_matches_silent(self):
        from repro.integrity.explorer import explore
        silent = explore("softupdates", "microbench", seed=3, ops=4,
                         jobs=2, max_points=12)
        monitored = explore("softupdates", "microbench", seed=3, ops=4,
                            jobs=2, max_points=12, heartbeat=0.001,
                            stall_timeout=120.0,
                            on_heartbeat=lambda line: None)
        assert monitored.findings == silent.findings
        assert monitored.points == silent.points
