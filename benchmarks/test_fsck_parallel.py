"""Parallel fsck wall clock: serial vs pFSCK-style per-cg pools.

Not a paper table -- this tracks the harness's own audit throughput.  One
sizable populated image is audited at pool widths 1/2/4; each width's
best-of-three wall clock, the findings-identity verdict, and the measured
speedup land in the ``BENCH_perf.json`` trajectory (as a ``fsck_parallel``
grid) so the trend survives across sessions.

The identity assertion is unconditional: the pooled audit must reproduce
the serial finding-set byte for byte, every run, everywhere.  The speedup
assertion is host-gated: forked workers can only beat the serial scan
when the host actually has cores to run them on (``os.cpu_count() >= 4``);
on smaller hosts the numbers are recorded but not asserted, because a
1-core box physically cannot run 4 scanning processes concurrently.
"""

import os
import time

from benchmarks.conftest import SCALE, emit
from repro.fs.layout import FSGeometry
from repro.harness.parallel import GRID_REPORTS, CellStats, GridReport
from repro.harness.report import format_table
from repro.integrity.fsck import fsck
from repro.machine import Machine, MachineConfig
from repro.ordering import ConventionalScheme

GEOMETRY = FSGeometry(ipg=1024, dfrags_per_cg=8192, ncg=8)
JOBS = [1, 2, 4]
ROUNDS = 3


def build_image():
    machine = Machine(MachineConfig(scheme=ConventionalScheme(),
                                    fs_geometry=GEOMETRY))
    machine.format()
    ndirs = max(6, int(80 * SCALE))
    nfiles = max(10, int(120 * SCALE))

    def populate(fs):
        payload = b"x" * 6144
        for d in range(ndirs):
            yield from fs.mkdir(f"/d{d}")
            for f in range(nfiles):
                yield from fs.write_file(f"/d{d}/f{f}", payload)
        yield from fs.sync()

    machine.run_instantly(populate(machine.fs), name="populate")
    return machine.disk.storage, ndirs * nfiles


def findings_key(report):
    return (tuple(report.errors), tuple(report.warnings),
            tuple((ino, din.pack()) for ino, din in report.inodes.items()),
            tuple((ino, tuple(refs))
                  for ino, refs in report.references.items()))


def test_fsck_parallel_grid(once):
    def experiment():
        image, files = build_image()
        results = {}
        for jobs in JOBS:
            walls, report = [], None
            for _ in range(ROUNDS):
                start = time.perf_counter()
                report = fsck(image, GEOMETRY, jobs=jobs)
                walls.append(time.perf_counter() - start)
            results[jobs] = (min(walls), report)
        return files, results

    grid_start = time.perf_counter()
    files, results = once(experiment)
    grid_wall = time.perf_counter() - grid_start

    serial_wall, serial_report = results[1]
    assert serial_report.clean and not serial_report.warnings
    rows, cells = [], []
    for jobs in JOBS:
        wall, report = results[jobs]
        identical = findings_key(report) == findings_key(serial_report)
        speedup = serial_wall / wall if wall else 0.0
        rows.append([jobs, round(wall, 3), f"{speedup:.2f}x",
                     "yes" if identical else "NO"])
        cells.append(CellStats(
            key=f"jobs={jobs}", wall_seconds=round(wall, 4), sim_events=0,
            extra={"speedup": round(speedup, 3),
                   "identical": identical,
                   "files": files,
                   "inodes": len(report.inodes),
                   "host_cpus": os.cpu_count()}))
        # the contract every host must honour
        assert identical, f"jobs={jobs} diverged from the serial audit"

    grid = GridReport(name="fsck_parallel", jobs=max(JOBS),
                      wall_seconds=round(grid_wall, 3), cells=cells)
    GRID_REPORTS.append(grid)

    emit("fsck_parallel", format_table(
        f"Parallel fsck ({files} files, {GEOMETRY.ncg} cylinder groups, "
        f"{os.cpu_count()} host cpus; best of {ROUNDS}, host wall clock "
        f"-- varies run to run)",
        ["Jobs", "Wall (s)", "Speedup", "Identical"], rows))

    # wall-clock speedup needs real cores under the pool
    if (os.cpu_count() or 1) >= 4:
        speedup4 = serial_wall / results[4][0]
        assert speedup4 >= 2.0, (
            f"jobs=4 speedup {speedup4:.2f}x < 2x on a "
            f"{os.cpu_count()}-cpu host")
