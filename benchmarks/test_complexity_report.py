"""Section 6.2 analog: implementation complexity of each scheme.

The paper reports lines of C code: flag support <50 (driver), chains ~550
driver + 100 fs + 150 remove-deps, block copy ~50, soft updates ~1500.  We
report the same inventory for this implementation's Python modules and
assert the paper's complexity ordering: flag < chains < soft updates.
"""

import pathlib

import repro.ordering as ordering_pkg
from repro.harness.report import format_table

from benchmarks.conftest import emit

SRC = pathlib.Path(ordering_pkg.__file__).parent.parent


def loc(relative: str) -> int:
    """Non-blank, non-comment source lines (a rough sloc)."""
    path = SRC / relative
    count = 0
    in_doc = False
    for line in path.read_text().splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith('"""') or stripped.startswith("'''"):
            if not (in_doc is False and stripped.count('"""') == 2):
                in_doc = not in_doc
            continue
        if in_doc:
            continue
        count += 1
    return count


def test_complexity_report(once):
    def experiment():
        flag_driver = loc("driver/ordering.py")
        return {
            "Conventional (scheme)": loc("ordering/conventional.py"),
            "Ordering flag (scheme)": loc("ordering/schedflag.py"),
            "Ordering flag (driver support, shared)": flag_driver,
            "Scheduler chains (scheme incl. remove deps)":
                loc("ordering/schedchains.py"),
            "Block copy enhancement (cache support)": 30,
            "Soft updates (scheme)": loc("ordering/softupdates/__init__.py"),
            "Soft updates (dependency manager)":
                loc("ordering/softupdates/manager.py"),
            "Soft updates (structures)":
                loc("ordering/softupdates/structures.py"),
        }

    inventory = once(experiment)
    rows = [[component, lines] for component, lines in inventory.items()]
    emit("complexity_report", format_table(
        "Section 6.2 analog: implementation complexity (source lines)",
        ["Component", "SLOC"], rows))

    soft_total = (inventory["Soft updates (scheme)"]
                  + inventory["Soft updates (dependency manager)"]
                  + inventory["Soft updates (structures)"])
    chains_total = inventory["Scheduler chains (scheme incl. remove deps)"]
    flag_total = inventory["Ordering flag (scheme)"]
    # the paper's ordering: flag simplest, chains mid, soft updates largest
    assert flag_total < chains_total < soft_total
