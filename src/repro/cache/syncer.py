"""The syncer daemon (section 2) and the workitem queue (section 4.2).

UNIX SVR4 MP's syncer "awakens once each second and sweeps through a fraction
of the buffer cache, marking each dirty block encountered.  An asynchronous
write is initiated for each dirty block marked on the previous pass."  This
smears write-back over time instead of the classic bursty 30-second sync.

Soft updates reuses the same daemon for deferred work: "Any tasks that
require non-trivial processing are appended to a single workitem queue.
When the syncer daemon next awakens (within one second), it services the
workitem queue before its normal activities."
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, Union

from repro.sim.engine import Engine
from repro.cache.buffer import Buffer
from repro.cache.buffercache import BufferCache

#: a workitem is a plain callable (fast) or a generator function producing a
#: subroutine the syncer runs with ``yield from`` (may block on I/O)
Workitem = Union[Callable[[], None], Callable[[], Generator]]


class SyncerDaemon:
    """Background flusher with mark-then-write sweeps and a workitem queue."""

    def __init__(self, engine: Engine, cache: BufferCache,
                 interval: float = 1.0, sweep_passes: int = 10) -> None:
        if sweep_passes < 1:
            raise ValueError("sweep_passes must be >= 1")
        self.engine = engine
        self.cache = cache
        self.interval = interval
        self.sweep_passes = sweep_passes
        self._workitems: deque[tuple[Workitem, bool]] = deque()
        self._marked_buffers: list[Buffer] = []
        self._pass_number = 0
        self.wakeups = 0
        self.writes_started = 0
        self.workitems_run = 0
        obs = engine.obs
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._m_wakeups = registry.counter("syncer.wakeups")
            self._m_writes = registry.counter("syncer.writes_started")
            self._m_workitems = registry.counter("syncer.workitems")
            self._m_sweep_dirty = registry.counter("syncer.sweep_dirty")
        else:
            self._m_wakeups = None
            self._m_workitems = None
        self._process = engine.process(self._run(), name="syncer")

    # -- workitem queue ----------------------------------------------------
    def add_workitem(self, item: Workitem, blocking: bool = False) -> None:
        """Queue background work; serviced within one wakeup interval.

        ``blocking=True`` marks *item* as a generator function the syncer
        must drive with ``yield from`` (it may sleep on locks or disk I/O).
        """
        self._workitems.append((item, blocking))

    @property
    def pending_workitems(self) -> int:
        """Items queued and not yet serviced."""
        return len(self._workitems)

    # -- the daemon ----------------------------------------------------------
    def _run(self) -> Generator:
        obs = self._obs
        while True:
            yield self.engine.timeout(self.interval)
            self.wakeups += 1
            if obs is None:
                yield from self._service_workitems()
                self._sweep()
            else:
                self._m_wakeups.inc()
                span = obs.tracer.begin("syncer.wakeup", "syncer")
                yield from self._service_workitems()
                self._sweep()
                obs.tracer.end(span)

    def _service_workitems(self) -> Generator:
        # Service what is queued now; items queued by items run next wakeup,
        # bounding each wakeup's work (and matching "before its normal
        # activities" without livelocking the sweep).
        for _ in range(len(self._workitems)):
            item, blocking = self._workitems.popleft()
            self.workitems_run += 1
            if self._m_workitems is not None:
                self._m_workitems.inc()
            if blocking:
                yield from item()
            else:
                item()

    def _sweep(self) -> None:
        # write out blocks marked on a previous pass (retry busy ones later)
        retry: list[Buffer] = []
        started = 0
        for buf in self._marked_buffers:
            if not (buf.marked and buf.dirty):
                continue  # flushed or invalidated since marking
            if self.cache.start_flush(buf) is not None:
                self.writes_started += 1
                started += 1
            else:
                retry.append(buf)
        self._marked_buffers = retry
        if self._obs is not None:
            self._m_writes.inc(started)
            self._m_sweep_dirty.inc(len(self.cache.dirty_buffers()))
        # mark the dirty blocks in this pass's region; flushed next wakeup
        region = self._pass_number % self.sweep_passes
        self._pass_number += 1
        for buf in self.cache.dirty_buffers():
            if buf.daddr % self.sweep_passes == region and not buf.marked:
                buf.marked = True
                self._marked_buffers.append(buf)
