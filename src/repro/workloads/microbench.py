"""Figure 5's metadata-throughput microbenchmarks.

"Each data point (10,000 files split among the 'users') is an average of
several independent executions."  Each user works in a separate directory
(create throughput improves with users because name-collision checks scan
shorter directories).  Three modes:

* ``create``  -- figure 5a: create 1 KB files;
* ``remove``  -- figure 5b: remove pre-existing 1 KB files;
* ``create_remove`` -- figure 5c: create each file and immediately remove it
  (the case soft updates services with no disk writes at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.machine import Machine

FILE_SIZE = 1024


@dataclass
class MicrobenchResult:
    scheme: str
    mode: str
    users: int
    files: int
    elapsed: float
    #: files per second over the whole run (the figure's y axis)
    throughput: float
    disk_requests: int
    #: simulator events processed during the measured run
    sim_events: int = 0


def _create_user(machine: Machine, user: int, count: int) -> Generator:
    payload = bytes([user % 251]) * FILE_SIZE
    for index in range(count):
        yield from machine.fs.write_file(f"/u{user}/f{index}", payload)


def _remove_user(machine: Machine, user: int, count: int) -> Generator:
    for index in range(count):
        yield from machine.fs.unlink(f"/u{user}/f{index}")


def _create_remove_user(machine: Machine, user: int, count: int) -> Generator:
    payload = bytes([user % 251]) * FILE_SIZE
    for index in range(count):
        yield from machine.fs.write_file(f"/u{user}/f{index}", payload)
        yield from machine.fs.unlink(f"/u{user}/f{index}")


def run_microbench(machine: Machine, users: int, total_files: int,
                   mode: str) -> MicrobenchResult:
    """Run one figure-5 data point on a freshly formatted *machine*."""
    per_user = total_files // users
    workers = {"create": _create_user, "remove": _remove_user,
               "create_remove": _create_remove_user}[mode]

    def setup() -> Generator:
        for user in range(users):
            yield from machine.fs.mkdir(f"/u{user}")
        if mode == "remove":
            for user in range(users):
                yield from _create_user(machine, user, per_user)

    machine.populate(setup())
    start = machine.engine.now
    requests_before = machine.driver.requests_issued
    events_before = machine.engine.events_processed
    processes = [machine.spawn(workers(machine, user, per_user),
                               name=f"user{user}")
                 for user in range(users)]
    machine.run(*processes, max_events=500_000_000)
    elapsed = max(p.finished_at for p in processes) - start
    return MicrobenchResult(
        scheme=machine.scheme_name, mode=mode, users=users,
        files=per_user * users, elapsed=elapsed,
        throughput=(per_user * users) / elapsed if elapsed > 0 else 0.0,
        disk_requests=machine.driver.requests_issued - requests_before,
        sim_events=machine.engine.events_processed - events_before)
