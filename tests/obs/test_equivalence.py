"""Tracing must be free of observer effects.

The determinism contract of ``repro.obs``: a traced run and an untraced run
of the same workload are the *same simulation*.  The tracer only reads the
clock and appends to Python lists, so every simulated timestamp, every
dispatch decision, and the event count must match exactly.  These tests run
each scheme's workload twice -- observe on and off -- and compare the full
driver trace byte for byte.
"""

import hashlib

import pytest

from tests.conftest import SCHEME_FACTORIES, make_machine, run_user


def churn(machine):
    """A workload touching every update point: create/write/link/rename/
    unlink/truncate/mkdir/rmdir plus reads and an fsync."""
    fs = machine.fs

    def user():
        yield from fs.mkdir("/d")
        for index in range(12):
            yield from fs.write_file(f"/d/f{index}", b"x" * (1024 * (1 + index % 4)))
        yield from fs.link("/d/f0", "/d/hard")
        yield from fs.rename("/d/f1", "/d/renamed")
        handle = yield from fs.open("/d/f2")
        yield from fs.fsync(handle)
        yield from fs.close(handle)
        yield from fs.read_file("/d/f3")
        yield from fs.truncate("/d/f4")
        for index in range(5, 10):
            yield from fs.unlink(f"/d/f{index}")
        yield from fs.readdir("/d")
        yield from fs.sync()

    return user


def driver_trace_digest(machine) -> str:
    """A byte-exact digest of the completed request trace."""
    h = hashlib.sha256()
    for request in machine.driver.trace:
        h.update(repr((request.id, request.kind.value, request.lbn,
                       request.nsectors, request.flag,
                       sorted(request.depends_on), request.issuer,
                       request.issue_time, request.dispatch_time,
                       request.complete_time,
                       None if request.data is None
                       else hashlib.sha256(request.data).hexdigest()
                       )).encode())
    return h.hexdigest()


def run_once(scheme_name: str, observe: bool):
    machine = make_machine(scheme_name, free_cpu=False, observe=observe)
    run_user(machine, churn(machine)(), name="user0")
    machine.sync_and_settle()
    return machine


@pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
def test_traced_run_is_simulation_identical(scheme_name):
    untraced = run_once(scheme_name, observe=False)
    traced = run_once(scheme_name, observe=True)

    assert traced.obs is not None and untraced.obs is None
    # same simulated history, to the last event and timestamp
    assert traced.engine.events_processed == untraced.engine.events_processed
    assert traced.engine.now == untraced.engine.now
    assert driver_trace_digest(traced) == driver_trace_digest(untraced)
    # and the traced run actually observed something
    assert len(traced.obs.tracer.spans) > 0
    assert traced.obs.snapshot()["engine.events"] > 0


@pytest.mark.parametrize("scheme_name", ["conventional", "softupdates"])
def test_traced_rerun_is_deterministic(scheme_name):
    """Two traced runs produce identical spans (no host-time leakage)."""
    a = run_once(scheme_name, observe=True)
    b = run_once(scheme_name, observe=True)
    spans_a = [(s.name, s.track, s.start, s.end, s.parent) for s in a.obs.tracer.spans]
    spans_b = [(s.name, s.track, s.start, s.end, s.parent) for s in b.obs.tracer.spans]
    assert spans_a == spans_b
    assert a.obs.snapshot() == b.obs.snapshot()
