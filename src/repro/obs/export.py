"""Chrome/Perfetto ``trace_event`` JSON export and schema validation.

The output follows the Trace Event Format (the JSON flavour Perfetto's
legacy importer and ``chrome://tracing`` both load):

* every track becomes a named thread (``M``/``thread_name`` metadata) of a
  single process;
* properly nested sync spans become complete events (``ph: "X"``) with
  microsecond ``ts``/``dur`` on the simulated clock;
* overlapping spans (driver queue residencies) become async begin/end pairs
  (``ph: "b"``/``"e"``) keyed by ``id``;
* span ids and parent links ride in ``args`` (``span``/``parent``), which
  Perfetto surfaces in the selection panel.

:func:`validate_trace_events` is the schema check CI runs against generated
traces; it is deliberately dependency-free (no jsonschema in the image).
"""

from __future__ import annotations

import json
import pathlib
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:
    from repro.obs.session import Observability
    from repro.obs.tracer import Span

#: single simulated machine = one perfetto process
PID = 1


def _microseconds(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def _span_event(span: "Span", tid: int) -> list[dict]:
    args = dict(span.args or {})
    args["span"] = span.id
    if span.parent is not None:
        args["parent"] = span.parent
    common = {"name": span.name, "cat": span.cat, "pid": PID, "tid": tid,
              "args": args}
    if span.async_id is None:
        return [{**common, "ph": "X", "ts": _microseconds(span.start),
                 "dur": _microseconds(span.duration)}]
    # async pair: same id groups begin and end
    ident = f"0x{span.async_id:x}"
    return [
        {**common, "ph": "b", "id": ident, "ts": _microseconds(span.start)},
        {"name": span.name, "cat": span.cat, "pid": PID, "tid": tid,
         "ph": "e", "id": ident, "ts": _microseconds(span.end)},
    ]


def trace_events(obs: "Observability", label: str = "") -> dict:
    """Render the session's spans as a trace_event JSON document (a dict)."""
    tracks = obs.tracer.tracks()
    tid_of = {track: index + 1 for index, track in enumerate(tracks)}
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": PID, "tid": 0,
         "args": {"name": label or "repro simulation"}}
    ]
    for track, tid in tid_of.items():
        events.append({"name": "thread_name", "ph": "M", "pid": PID,
                       "tid": tid, "args": {"name": track}})
    for span in obs.tracer.spans:
        if not span.closed:
            continue
        events.extend(_span_event(span, tid_of[span.track]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated seconds (exported as microseconds)",
            "label": label,
            "metrics": obs.snapshot(),
        },
    }


def write_trace(obs: "Observability", path: Union[str, pathlib.Path],
                label: str = "") -> pathlib.Path:
    """Write the trace_event JSON for *obs* to *path*; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_events(obs, label=label)) + "\n")
    return path


# ----------------------------------------------------------------------
# schema validation (the CI trace-smoke check)
# ----------------------------------------------------------------------
_PHASES_WITH_ID = {"b", "e", "n", "s", "t", "f"}
_KNOWN_PHASES = {"X", "B", "E", "M", "I", "C"} | _PHASES_WITH_ID


class TraceFormatError(ValueError):
    """The document is not valid trace_event JSON."""


def _fail(index: int, message: str, event: Optional[dict] = None) -> None:
    detail = f" in event {event!r}" if event is not None else ""
    raise TraceFormatError(f"traceEvents[{index}]: {message}{detail}")


def validate_trace_events(doc) -> int:
    """Check *doc* against the trace_event format; returns the event count.

    Raises :class:`TraceFormatError` naming the first offending event.
    Checks the subset of the spec our exporter uses plus the invariants
    Perfetto's importer actually relies on (numeric ``ts``, ``dur`` present
    and non-negative on complete events, ids on async events, metadata
    shape).
    """
    if not isinstance(doc, dict):
        raise TraceFormatError(f"top level must be an object, got {type(doc)}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise TraceFormatError("traceEvents must be a non-empty array")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            _fail(index, "event is not an object")
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            _fail(index, f"unknown phase {phase!r}", event)
        if not isinstance(event.get("name"), str) or not event["name"]:
            _fail(index, "missing or empty name", event)
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                _fail(index, f"missing integer {key}", event)
        if phase == "M":
            if not isinstance(event.get("args"), dict):
                _fail(index, "metadata event without args", event)
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            _fail(index, f"bad ts {ts!r}", event)
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                _fail(index, f"complete event with bad dur {dur!r}", event)
        if phase in _PHASES_WITH_ID and "id" not in event:
            _fail(index, f"{phase!r} event without id", event)
        if not isinstance(event.get("cat", ""), str):
            _fail(index, "non-string cat", event)
    return len(events)


def validate_trace_file(path: Union[str, pathlib.Path]) -> int:
    """Load and validate one JSON file; returns its event count."""
    with open(path) as handle:
        doc = json.load(handle)
    return validate_trace_events(doc)
