"""The parallel grid runner: serial/parallel identity and perf records."""

from dataclasses import dataclass

import pytest

from repro.disk import Disk
from repro.driver import DeviceDriver, FlagPolicy, FlagSemantics
from repro.harness.parallel import (
    GRID_REPORTS,
    Cell,
    GridCellError,
    GridReport,
    default_jobs,
    run_grid,
)
from repro.sim import Engine


@dataclass
class MiniResult:
    key: str
    trace: list
    sim_events: int


def simulate(seed: int) -> MiniResult:
    """A small deterministic driver run (heavier for larger seeds, so
    parallel completion order differs from input order)."""
    engine = Engine()
    driver = DeviceDriver(engine, Disk(engine),
                          FlagPolicy(FlagSemantics.PART))
    issued = [driver.write((37 * (seed + 1) * i) % 5000, b"\x01" * 1024,
                           flag=i % 3 == 0)
              for i in range(10 + 10 * seed)]
    for request in issued:
        engine.run_until(request.done, max_events=1_000_000)
    return MiniResult(key=f"cell{seed}",
                      trace=[(r.id, r.lbn, r.complete_time)
                             for r in driver.trace],
                      sim_events=engine.events_processed)


def make_cells():
    return [Cell(f"cell{seed}", lambda seed=seed: simulate(seed))
            for seed in range(4)]


class TestRunGrid:
    def test_serial_and_parallel_results_identical(self):
        serial = run_grid("t-serial", make_cells(), jobs=1)
        parallel = run_grid("t-parallel", make_cells(), jobs=3)
        assert serial == parallel

    def test_results_keyed_in_input_order(self):
        results = run_grid("t-order", make_cells(), jobs=3)
        assert list(results) == [f"cell{seed}" for seed in range(4)]

    def test_accepts_key_fn_pairs(self):
        results = run_grid("t-pairs", [("a", lambda: 1), ("b", lambda: 2)],
                           jobs=1)
        assert results == {"a": 1, "b": 2}

    def test_grid_report_records_cells(self):
        before = len(GRID_REPORTS)
        run_grid("t-report", make_cells(), jobs=2)
        report = GRID_REPORTS[-1]
        assert len(GRID_REPORTS) == before + 1
        assert isinstance(report, GridReport)
        assert report.name == "t-report"
        assert [cell.key for cell in report.cells] \
            == [f"cell{seed}" for seed in range(4)]
        # sim_events comes off the result object; walls are measured
        assert all(cell.sim_events > 0 for cell in report.cells)
        assert all(cell.wall_seconds >= 0 for cell in report.cells)
        assert report.sim_events == sum(c.sim_events for c in report.cells)
        assert report.cell_wall_total == pytest.approx(
            sum(c.wall_seconds for c in report.cells))

    def test_results_without_sim_events_record_zero(self):
        run_grid("t-plain", [("x", lambda: 41)], jobs=1)
        assert GRID_REPORTS[-1].cells[0].sim_events == 0


def _boom():
    raise ValueError("synthetic cell failure")


class TestGridCellError:
    """A worker exception must surface naming the failing cell, not as a
    bare pickled traceback from somewhere inside the pool."""

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_failure_names_grid_and_cell(self, jobs):
        cells = [("ok0", lambda: 1),
                 (("Soft Updates", "4 users"), _boom),
                 ("ok1", lambda: 2)]
        with pytest.raises(GridCellError) as excinfo:
            run_grid("t-fail", cells, jobs=jobs)
        err = excinfo.value
        assert err.grid == "t-fail"
        assert err.key == ("Soft Updates", "4 users")
        assert "ValueError: synthetic cell failure" in err.error
        assert "synthetic cell failure" in err.cell_traceback
        assert "Soft Updates" in str(err)

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_first_failure_in_input_order_wins(self, jobs):
        cells = [("a", lambda: 1), ("b", _boom), ("c", _boom)]
        with pytest.raises(GridCellError) as excinfo:
            run_grid("t-first", cells, jobs=jobs)
        assert excinfo.value.key == "b"

    def test_failed_grid_records_no_report(self):
        before = len(GRID_REPORTS)
        with pytest.raises(GridCellError):
            run_grid("t-noreport", [("x", _boom)], jobs=1)
        assert len(GRID_REPORTS) == before


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() >= 1
