"""Smoke test for the ``python -m repro.harness`` entry point."""

import os
import subprocess
import sys


def test_cli_prints_both_tables():
    # keep the smoke run out of the real run ledger
    env = {**os.environ, "REPRO_LEDGER": "off"}
    completed = subprocess.run(
        [sys.executable, "-m", "repro.harness", "0.02"],
        capture_output=True, text=True, timeout=600, env=env)
    assert completed.returncode == 0, completed.stderr[-500:]
    out = completed.stdout
    assert "4-user copy" in out
    assert "4-user remove" in out
    for scheme in ("Conventional", "Scheduler Flag", "Scheduler Chains",
                   "Soft Updates", "No Order"):
        # one row at line start in each of the two tables (the '% of No
        # Order' header also mentions No Order, hence the newline anchor)
        assert out.count(f"\n{scheme}") == 2
