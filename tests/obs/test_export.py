"""Acceptance: every scheme's copy/remove cell exports a valid Perfetto
trace and the flame summary attributes >= 95% of user-track time to named
spans."""

import json

import pytest

from repro.harness import run_copy, run_remove
from repro.harness.runner import standard_scheme_config
from repro.harness.__main__ import SCHEME_ALIASES, main as harness_main
from repro.obs import (
    flame_summary,
    summarize,
    trace_events,
    validate_trace_events,
    validate_trace_file,
)
from repro.workloads.trees import TreeSpec

SCALE = 0.015
CACHE = 2 * 1024 * 1024


def traced_cell(scheme_name: str, bench: str):
    config = standard_scheme_config(scheme_name, cache_bytes=CACHE)
    config.observe = True
    captured = {}
    runner = run_copy if bench == "copy" else run_remove
    result = runner(config, 1, TreeSpec().scaled(SCALE),
                    label=f"{bench} {scheme_name}",
                    on_machine=lambda machine: captured.update(m=machine))
    return captured["m"], result


@pytest.mark.parametrize("scheme_name,bench", [
    ("No Order", "copy"),
    ("Conventional", "remove"),
    ("Scheduler Flag", "copy"),
    ("Scheduler Chains", "remove"),
    ("Soft Updates", "copy"),
])
def test_traced_cell_exports_valid_trace(scheme_name, bench):
    machine, result = traced_cell(scheme_name, bench)
    obs = machine.obs
    assert obs is not None
    assert result.disk_requests > 0

    doc = trace_events(obs, label=f"{bench} {scheme_name}")
    count = validate_trace_events(doc)
    assert count > 100  # a real workload, not a stub trace
    # survives a JSON round trip (what Perfetto actually loads)
    validate_trace_events(json.loads(json.dumps(doc)))

    # flame acceptance: >= 95% of each user track's active time is under
    # named top-level spans (syscalls)
    summaries = summarize(obs)
    user_tracks = [track for track in summaries if track.startswith("user")]
    assert user_tracks
    for track in user_tracks:
        assert summaries[track].coverage >= 0.95, \
            f"{track}: {summaries[track].coverage:.3f}"

    text = flame_summary(obs, label=scheme_name)
    assert "Track user0" in text
    assert "syscall." in text
    assert "Metrics:" in text


def test_snapshot_lands_in_run_result_extra():
    machine, result = traced_cell("Conventional", "copy")
    assert result.extra["engine.events"] == machine.engine.events_processed
    assert result.extra["driver.writes"] > 0
    # the histogram covers the whole session (setup included); the
    # RunResult window starts at the benchmark mark
    assert result.extra["driver.queue_wait.count"] >= result.disk_requests
    # the sync-stall counter is the conventional scheme's signature
    assert result.extra["ordering.sync_stall"] > 0
    # any instrument is citable as a report column by name
    row = result.as_row(["scheme", "ordering.sync_stall"])
    assert row == ["Conventional", result.extra["ordering.sync_stall"]]


def test_trace_cli_writes_valid_artifacts(tmp_path, capsys):
    rc = harness_main(["prog", "trace", "copy", "--scheme", "noorder",
                       "--scale", "0.01", "--out", str(tmp_path)])
    assert rc == 0
    trace_path = tmp_path / "copy-no-order.trace.json"
    flame_path = tmp_path / "copy-no-order.flame.txt"
    assert trace_path.is_file() and flame_path.is_file()
    assert validate_trace_file(trace_path) > 0
    assert "Track user0" in flame_path.read_text()
    out = capsys.readouterr().out
    assert "traced copy No Order" in out


def test_trace_cli_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        harness_main(["prog", "trace", "copy", "--scheme", "nonesuch"])


def test_scheme_aliases_cover_all_standard_schemes():
    # the aliases come from the single registry, so every standard scheme
    # is reachable (non-standard registrants like nvram ride along too)
    from repro.harness.runner import STANDARD_SCHEMES
    assert set(STANDARD_SCHEMES) <= set(SCHEME_ALIASES.values())
