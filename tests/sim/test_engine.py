"""Unit tests for the discrete-event engine and events."""

import pytest

from repro.sim import Engine, SimulationError


@pytest.fixture
def eng():
    return Engine()


class TestClock:
    def test_starts_at_zero(self, eng):
        assert eng.now == 0.0

    def test_timeout_advances_clock(self, eng):
        eng.timeout(2.5)
        eng.run()
        assert eng.now == 2.5

    def test_run_until_absolute_time(self, eng):
        eng.timeout(10.0)
        eng.run(until=4.0)
        assert eng.now == 4.0

    def test_events_fire_in_time_order(self, eng):
        order = []
        eng.call_later(3.0, order.append, "c")
        eng.call_later(1.0, order.append, "a")
        eng.call_later(2.0, order.append, "b")
        eng.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self, eng):
        order = []
        for tag in range(5):
            eng.call_later(1.0, order.append, tag)
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_in_the_past_never_rewinds_clock(self, eng):
        """run(until=...) with until < now must not move time backwards."""
        eng.timeout(5.0)
        eng.run()
        assert eng.now == 5.0
        eng.run(until=2.0)  # nothing to do; the past stays the past
        assert eng.now == 5.0

    def test_run_advances_clock_when_heap_drains_early(self, eng):
        """If every event lands before *until*, the clock still reaches it."""
        eng.timeout(1.0)
        eng.run(until=7.0)
        assert eng.now == 7.0

    def test_run_until_matches_run_to_semantics(self, eng):
        """run(until=t) and run_to(t) leave identical clock/event state."""
        from repro.sim import Engine

        def make():
            engine = Engine()
            order = []
            for delay in (1.0, 3.0, 3.0, 8.0):
                engine.call_later(delay, order.append, delay)
            return engine, order

        a, seen_a = make()
        a.run(until=3.0)
        b, seen_b = make()
        b.run_to(3.0)
        assert a.now == b.now == 3.0
        assert seen_a == seen_b == [1.0, 3.0, 3.0]
        assert a.events_processed == b.events_processed

    def test_run_without_until_drains_and_keeps_last_time(self, eng):
        eng.timeout(2.0)
        eng.run()
        eng.run()  # empty heap: no-op, clock untouched
        assert eng.now == 2.0

    def test_step_on_empty_heap_raises(self, eng):
        with pytest.raises(SimulationError):
            eng.step()

    def test_max_events_guard(self, eng):
        def forever():
            while True:
                yield eng.timeout(1.0)

        eng.process(forever())
        with pytest.raises(SimulationError, match="max_events"):
            eng.run(max_events=10)


class TestEvent:
    def test_succeed_delivers_value(self, eng):
        ev = eng.event()

        def waiter():
            got = yield ev
            return got

        proc = eng.process(waiter())
        eng.call_later(1.0, ev.succeed, 42)
        assert eng.run_until(proc) == 42

    def test_double_trigger_rejected(self, eng):
        ev = eng.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)

    def test_fail_raises_in_waiter(self, eng):
        ev = eng.event()

        def waiter():
            with pytest.raises(ValueError):
                yield ev
            return "handled"

        proc = eng.process(waiter())
        eng.call_later(0.5, ev.fail, ValueError("boom"))
        assert eng.run_until(proc) == "handled"

    def test_fail_requires_exception(self, eng):
        with pytest.raises(TypeError):
            eng.event().fail("not an exception")

    def test_negative_timeout_rejected(self, eng):
        with pytest.raises(ValueError):
            eng.timeout(-1.0)

    def test_late_callback_on_processed_event_still_fires(self, eng):
        ev = eng.event()
        ev.succeed("v")
        eng.run()
        seen = []
        ev._add_callback(lambda e: seen.append(e.value))
        eng.run()
        assert seen == ["v"]

    def test_multiple_waiters_all_resume(self, eng):
        ev = eng.event()
        results = []

        def waiter(tag):
            value = yield ev
            results.append((tag, value))

        procs = [eng.process(waiter(i)) for i in range(3)]
        ev.succeed("x")
        eng.run_all(procs)
        assert sorted(results) == [(0, "x"), (1, "x"), (2, "x")]


class TestRunUntil:
    def test_deadlock_detected(self, eng):
        ev = eng.event()  # never triggered

        def waiter():
            yield ev

        proc = eng.process(waiter())
        with pytest.raises(SimulationError, match="deadlock|drained"):
            eng.run_until(proc)

    def test_returns_process_value(self, eng):
        def worker():
            yield eng.timeout(1.0)
            return "done"

        assert eng.run_until(eng.process(worker())) == "done"
