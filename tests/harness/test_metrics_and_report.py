"""Tests for metric collection and the table formatters."""

import pytest

from repro.harness.metrics import RunResult, collect
from repro.harness.report import format_series, format_table
from tests.conftest import make_machine, run_user


class TestCollect:
    def test_window_excludes_setup_requests(self):
        machine = make_machine("conventional")

        def setup():
            yield from machine.fs.write_file("/setup", b"s" * 4096)
            yield from machine.fs.sync()

        run_user(machine, setup())
        mark = machine.driver.last_issued_id

        def benchmark():
            yield from machine.fs.write_file("/bench", b"b" * 4096)
            yield from machine.fs.sync()

        process = machine.engine.process(benchmark(), name="bench")
        machine.engine.run_until(process, max_events=5_000_000)
        result = collect(machine, [process], mark)
        assert 0 < result.disk_requests < machine.driver.requests_issued
        assert result.elapsed > 0
        assert result.reads + result.writes == result.disk_requests

    def test_cpu_time_sums_users(self):
        machine = make_machine("noorder", free_cpu=False)

        def worker():
            yield from machine.fs.write_file("/c", b"c" * 10000)

        procs = [machine.engine.process(worker(), name="a")]
        machine.engine.run_all(procs, max_events=5_000_000)
        result = collect(machine, procs, 0)
        assert result.cpu_time == pytest.approx(procs[0].cpu_time)

    def test_empty_window(self):
        machine = make_machine("noorder")
        result = collect(machine, [], machine.driver.last_issued_id)
        assert result.disk_requests == 0
        assert result.elapsed == 0.0

    def test_users_completing_without_io_yield_zero_request_window(self):
        """A window with zero completed requests must not divide by zero:
        users that never touch the disk still report their elapsed time."""
        machine = make_machine("noorder", free_cpu=False)

        def idle():
            yield machine.engine.timeout(0.5)

        process = machine.engine.process(idle(), name="idle")
        machine.engine.run_until(process, max_events=1_000_000)
        result = collect(machine, [process], machine.driver.last_issued_id)
        assert result.disk_requests == 0
        assert result.reads == result.writes == 0
        assert result.io_response_avg == 0.0
        assert result.queue_avg == 0.0
        assert result.driver_response_avg == 0.0
        assert result.elapsed == pytest.approx(0.5)

    def test_reads_only_window(self):
        """A cold-cache read workload produces a pure-read window: the
        writes counter stays zero and reads account for every request."""
        machine = make_machine("noorder")
        run_user(machine, machine.fs.write_file("/r", b"r" * 65536),
                 name="setup")
        machine.sync_and_settle()
        machine.drop_caches()
        mark = machine.driver.last_issued_id

        def reader():
            data = yield from machine.fs.read_file("/r")
            assert data == b"r" * 65536

        process = machine.engine.process(reader(), name="reader")
        machine.engine.run_until(process, max_events=5_000_000)
        result = collect(machine, [process], mark)
        assert result.disk_requests > 0
        assert result.writes == 0
        assert result.reads == result.disk_requests
        assert result.io_response_avg > 0

    def test_after_request_id_past_trace_end(self):
        """A mark beyond the last issued id selects the empty window rather
        than raising or going negative."""
        machine = make_machine("conventional")
        run_user(machine, machine.fs.write_file("/w", b"w" * 4096))
        machine.sync_and_settle()
        mark = machine.driver.last_issued_id + 1_000_000
        result = collect(machine, [], mark)
        assert result.disk_requests == 0
        assert result.access_avg == 0.0
        assert result.sim_events == machine.engine.events_processed

    def test_driver_response_is_queue_plus_service(self):
        """driver_response_avg must be computed from the dispatch stamps
        (queue wait + drive service), not copied from io_response_avg."""
        machine = make_machine("conventional")

        def benchmark():
            yield from machine.fs.write_file("/bench", b"b" * 40960)
            yield from machine.fs.sync()

        process = machine.engine.process(benchmark(), name="bench")
        machine.engine.run_until(process, max_events=5_000_000)
        result = collect(machine, [process], 0)
        window = [r for r in machine.driver.trace if r.id > 0]
        queue = sum(r.dispatch_time - r.issue_time for r in window)
        service = sum(r.complete_time - r.dispatch_time for r in window)
        assert result.queue_avg == pytest.approx(queue / len(window))
        assert result.driver_response_avg == pytest.approx(
            (queue + service) / len(window))
        assert result.sim_events > 0


class TestRunResult:
    def test_as_row_mixes_fields_and_extras(self):
        result = RunResult(scheme="X", elapsed=1.5)
        result.extra["throughput"] = 42
        assert result.as_row(["scheme", "elapsed", "throughput"]) \
            == ["X", 1.5, 42]

    def test_as_row_extra_keys_shadowed_by_methods_resolve_to_extra(self):
        """Only declared dataclass *fields* resolve as attributes.  A
        ``hasattr`` check would also match methods -- ``as_row`` itself --
        and return a bound method instead of the extra's value."""
        result = RunResult(scheme="X")
        result.extra["as_row"] = "column named like a method"
        result.extra["collect"] = 7
        assert result.as_row(["as_row", "collect"]) \
            == ["column named like a method", 7]

    def test_as_row_unknown_column_is_blank(self):
        result = RunResult(scheme="X")
        assert result.as_row(["no-such-column"]) == [""]


class TestFormatters:
    def test_format_table_aligns(self):
        text = format_table("T", ["a", "long-header"],
                            [[1, 2.5], ["xyz", 10000.0]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[2:]}) == 1  # aligned

    def test_format_series_column_per_scheme(self):
        text = format_series("S", "x", [1, 2],
                             {"A": [10.0, 20.0], "B": [30.0, 40.0]})
        assert "A" in text and "B" in text
        assert "30.0" in text

    def test_float_formatting_rules(self):
        text = format_table("F", ["v"], [[0.123456], [12.34], [12345.6]])
        assert "0.123" in text
        assert "12.3" in text
        assert "12346" in text
