"""Run independent benchmark cells across a multiprocessing pool.

The benchmark grids (tables 1-3, figures 1-6, the extensions) are
embarrassingly parallel: every ``(scheme, config)`` cell builds its own
:class:`~repro.machine.Machine`, runs it to completion, and reduces the
trace to a small result object -- cells share no state.  This module fans a
grid's cells across a pool of forked workers, the same pattern
``repro.integrity.explorer`` uses for crash-point verification: the work
list is a module-level global installed *before* the pool forks, so child
processes inherit the cell closures by address space and only list indices
(and the small results) cross the pipe.

Determinism is the contract.  A cell's simulation is bit-identical no
matter which worker runs it (the simulator seeds all randomness and has no
hidden cross-machine state), and :func:`run_grid` returns results keyed in
*input* order regardless of completion order -- so a parallel grid produces
byte-identical tables to a serial one.  ``REPRO_JOBS=1`` forces the serial
path; the suite's CI job diffs the two.

Every grid also records per-cell wall seconds and simulator events into
:data:`GRID_REPORTS`; ``benchmarks/conftest.py`` flushes those into the
``BENCH_perf.json`` trajectory and ``benchmarks/results/perf_report.txt``
at session end, so future performance work has a baseline to compare
against.

Long sweeps are no longer black boxes: the parallel path supports
**heartbeats** (periodic one-line progress to stderr: cells done/total,
ETA, the slowest in-flight cell) and **stall detection** (a cell in flight
longer than the timeout aborts the grid with :class:`GridStallError`
*naming* the stuck ``(scheme, config)`` key, instead of hanging forever).
Both ride on a lock-free shared start-stamp array the forked workers
inherit; neither touches results, so a heartbeat-monitored grid stays
byte-identical to a silent one.  ``REPRO_HEARTBEAT`` / ``REPRO_STALL_TIMEOUT``
(seconds; 0 disables) set session-wide defaults; :class:`Heartbeat` is
reused by the crash explorer's verification pools.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Cell", "CellStats", "GridCellError", "GridReport",
           "GRID_REPORTS", "GridStallError", "Heartbeat", "default_jobs",
           "heartbeat_interval", "run_grid", "stall_timeout"]


@dataclass
class Cell:
    """One independent grid cell: a key and a zero-argument experiment."""

    key: Any
    fn: Callable[[], Any]


@dataclass
class CellStats:
    """Per-cell performance record (host wall clock + simulator events)."""

    key: str
    wall_seconds: float
    sim_events: int
    #: extras the result object volunteers via a ``perf_extra`` mapping
    #: (e.g. the crash explorer's points verified / points-per-second);
    #: flushed verbatim into the cell's BENCH_perf.json record
    extra: dict = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        return self.sim_events / self.wall_seconds if self.wall_seconds else 0.0


@dataclass
class GridReport:
    """One grid's performance summary, appended to :data:`GRID_REPORTS`."""

    name: str
    jobs: int
    #: wall seconds for the whole grid (cells overlap when jobs > 1)
    wall_seconds: float = 0.0
    cells: list = field(default_factory=list)

    @property
    def cell_wall_total(self) -> float:
        """Sum of per-cell walls (= serial cost; > wall_seconds when parallel)."""
        return sum(cell.wall_seconds for cell in self.cells)

    @property
    def sim_events(self) -> int:
        return sum(cell.sim_events for cell in self.cells)


def _env_seconds(name: str) -> float:
    """A non-negative float from the environment (unset/invalid -> 0)."""
    try:
        return max(0.0, float(os.environ.get(name, "") or 0.0))
    except ValueError:
        return 0.0


def heartbeat_interval() -> float:
    """Default heartbeat period in seconds (``REPRO_HEARTBEAT``; 0 = off)."""
    return _env_seconds("REPRO_HEARTBEAT")


def stall_timeout() -> float:
    """Default stall timeout in seconds (``REPRO_STALL_TIMEOUT``; 0 = off)."""
    return _env_seconds("REPRO_STALL_TIMEOUT")


class GridStallError(RuntimeError):
    """A cell stayed in flight past the stall timeout.

    Raised in the parent while the pool is being torn down, naming the
    stuck cell key -- the alternative is a sweep that hangs forever with
    no clue which ``(scheme, config)`` cell wedged.
    """

    def __init__(self, grid: str, key: Any, age: float, timeout: float,
                 done: int, total: int) -> None:
        super().__init__(
            f"{grid} cell {key!r} stalled: in flight for "
            f"{age:.1f}s, past the {timeout:.1f}s stall timeout "
            f"({done}/{total} cells had completed)")
        self.grid = grid
        self.key = key
        self.age = age
        self.timeout = timeout


@dataclass
class Heartbeat:
    """Progress/stall monitor for one fork pool's result stream.

    :meth:`drain` wraps a ``pool.imap_unordered`` iterator whose items
    lead with the task index; between results it reads *starts* (a shared
    ``'d'`` array the workers stamp with ``time.time()`` as they pick up a
    task) to see what is in flight.  Pure observer: yields every item
    unchanged, in arrival order.
    """

    name: str
    labels: list
    interval: float = 0.0
    timeout: float = 0.0
    emit: Optional[Callable[[str], None]] = None

    @property
    def active(self) -> bool:
        return self.interval > 0.0 or self.timeout > 0.0

    def _emit(self, line: str) -> None:
        if self.emit is not None:
            self.emit(line)
        else:
            print(line, file=sys.stderr, flush=True)

    def drain(self, iterator, starts):
        """Yield from *iterator*, heartbeating/stall-checking on gaps."""
        total = len(self.labels)
        candidates = [t for t in (self.interval, self.timeout) if t > 0.0]
        poll = max(0.02, min(candidates) / 2) if candidates else None
        begun = last_beat = time.time()
        done = 0
        finished: set[int] = set()
        while done < total:
            try:
                item = iterator.next(timeout=poll)
            except StopIteration:
                return
            except multiprocessing.TimeoutError:
                now = time.time()
                in_flight = sorted(
                    ((now - starts[i], i) for i in range(total)
                     if starts[i] > 0.0 and i not in finished),
                    reverse=True)
                if self.timeout > 0.0 and in_flight \
                        and in_flight[0][0] > self.timeout:
                    age, index = in_flight[0]
                    raise GridStallError(self.name, self.labels[index],
                                         age, self.timeout, done, total)
                if self.interval > 0.0 and now - last_beat >= self.interval:
                    last_beat = now
                    self._emit(self._format(done, total, in_flight,
                                            now - begun))
                continue
            finished.add(item[0])
            done += 1
            yield item

    def _format(self, done: int, total: int, in_flight: list,
                elapsed: float) -> str:
        line = (f"[{self.name}] {done}/{total} cells done, "
                f"{len(in_flight)} in flight, elapsed {elapsed:.1f}s")
        if done:
            eta = (total - done) * elapsed / done
            line += f", eta ~{eta:.1f}s"
        if in_flight:
            age, index = in_flight[0]
            line += f", slowest in-flight {self.labels[index]} ({age:.1f}s)"
        return line


class GridCellError(RuntimeError):
    """A grid cell's experiment raised.

    Raised by :func:`run_grid` in the parent process, naming the grid and
    the failing cell key -- a bare exception surfacing from a fork-pool
    worker would otherwise leave no clue *which* (scheme, config) cell
    died.  The worker-side traceback is carried in ``cell_traceback`` and
    included in the message.
    """

    def __init__(self, grid: str, key: Any, error: str, tb: str) -> None:
        super().__init__(
            f"grid {grid!r} cell {key!r} failed: {error}\n"
            f"--- worker traceback ---\n{tb}")
        self.grid = grid
        self.key = key
        self.error = error
        self.cell_traceback = tb


@dataclass
class _CellFailure:
    """Worker-side capture of a cell exception (picklable, unlike many
    exception objects with machine state attached)."""

    error: str
    traceback: str


#: every grid executed this session, in execution order
GRID_REPORTS: list[GridReport] = []

#: the active grid's cells; a module-level global so forked workers inherit
#: the closures and :func:`_run_cell` only needs an index (explorer.py's
#: pattern -- closures over local state cannot cross a pickle boundary)
_WORK: list[Cell] = []

#: shared per-cell start stamps (host epoch seconds), written lock-free by
#: whichever worker picks the cell up; 0.0 = not started yet.  Inherited
#: by fork like _WORK.
_STARTS = None


def _run_cell(index: int):
    cell = _WORK[index]
    if _STARTS is not None:
        _STARTS[index] = time.time()
    start = time.perf_counter()
    try:
        result = cell.fn()
    except Exception as exc:
        result = _CellFailure(f"{type(exc).__name__}: {exc}",
                              traceback.format_exc())
    return index, result, time.perf_counter() - start


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else the machine's core count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def run_grid(name: str, cells: list, jobs: Optional[int] = None,
             heartbeat: Optional[float] = None,
             stall: Optional[float] = None,
             on_heartbeat: Optional[Callable[[str], None]] = None) -> dict:
    """Run every cell; return ``{key: result}`` in input order.

    *cells* is a list of :class:`Cell` or ``(key, fn)`` pairs.  Runs
    serially when *jobs* resolves to 1, when only one cell exists, or when
    the platform cannot fork (the pool pattern requires inherited memory);
    otherwise fans out over a fork pool.  Either way the returned mapping
    and all recorded statistics are identical -- completion order never
    leaks into the results.

    *heartbeat* emits a progress line (via *on_heartbeat*, default stderr)
    every that-many seconds while cells are in flight; *stall* aborts with
    :class:`GridStallError` naming the stuck cell once any single cell has
    been in flight that long.  ``None`` defers to ``REPRO_HEARTBEAT`` /
    ``REPRO_STALL_TIMEOUT``; both apply only to the fork-pool path (a
    serial run cannot observe its own wedged cell from within).
    """
    cells = [cell if isinstance(cell, Cell) else Cell(*cell)
             for cell in cells]
    if jobs is None:
        jobs = default_jobs()
    if heartbeat is None:
        heartbeat = heartbeat_interval()
    if stall is None:
        stall = stall_timeout()
    methods = multiprocessing.get_all_start_methods()
    parallel = jobs > 1 and len(cells) > 1 and "fork" in methods
    report = GridReport(name=name, jobs=jobs if parallel else 1)
    grid_start = time.perf_counter()

    outcomes: list = [None] * len(cells)
    if parallel:
        global _WORK, _STARTS
        monitor = Heartbeat(name=f"grid {name}",
                            labels=[str(cell.key) for cell in cells],
                            interval=heartbeat, timeout=stall,
                            emit=on_heartbeat)
        starts = multiprocessing.Array("d", len(cells), lock=False) \
            if monitor.active else None
        previous, _WORK = _WORK, cells
        previous_starts, _STARTS = _STARTS, starts
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(min(jobs, len(cells))) as pool:
                results_iter = pool.imap_unordered(
                    _run_cell, range(len(cells)), chunksize=1)
                if monitor.active:
                    results_iter = monitor.drain(results_iter, starts)
                for index, result, wall in results_iter:
                    outcomes[index] = (result, wall)
        finally:
            _WORK = previous
            _STARTS = previous_starts
    else:
        for index, cell in enumerate(cells):
            start = time.perf_counter()
            try:
                result = cell.fn()
            except Exception as exc:
                result = _CellFailure(f"{type(exc).__name__}: {exc}",
                                      traceback.format_exc())
            outcomes[index] = (result, time.perf_counter() - start)

    report.wall_seconds = time.perf_counter() - grid_start
    # surface the first failure in *input* order (deterministic no matter
    # which worker hit it or when), naming the cell that died
    for cell, (result, _wall) in zip(cells, outcomes):
        if isinstance(result, _CellFailure):
            raise GridCellError(name, cell.key, result.error,
                                result.traceback)
    results = {}
    for cell, (result, wall) in zip(cells, outcomes):
        results[cell.key] = result
        report.cells.append(CellStats(
            key=str(cell.key), wall_seconds=wall,
            sim_events=getattr(result, "sim_events", 0) or 0,
            extra=dict(getattr(result, "perf_extra", None) or {})))
    GRID_REPORTS.append(report)
    return results
