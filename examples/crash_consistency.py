#!/usr/bin/env python3
"""Crash consistency demo: why ordering matters.

Runs the same file-churn workload under No Order (delayed writes, no
ordering) and Soft Updates, pulls the plug at the same simulated instant,
and runs fsck on both surviving images.

Run:  python examples/crash_consistency.py
"""

import random

from repro.integrity import CrashScheduler, fsck
from repro.machine import Machine, MachineConfig
from repro.ordering import NoOrderScheme, SoftUpdatesScheme


def churn(machine, seed=3, operations=60):
    rng = random.Random(seed)

    def body():
        paths = []
        for step in range(operations):
            if rng.random() < 0.6 or not paths:
                path = f"/file{step}"
                yield from machine.fs.write_file(
                    path, b"#" * rng.choice([500, 4000, 12000]))
                paths.append(path)
            else:
                yield from machine.fs.unlink(
                    paths.pop(rng.randrange(len(paths))))

    return body()


def crash_and_check(scheme, crash_at=4.0):
    machine = Machine(MachineConfig(scheme=scheme))
    machine.format()
    image = CrashScheduler(machine).run_and_crash(churn(machine),
                                                  crash_at=crash_at)
    return fsck(image)


def main() -> None:
    for label, scheme in [("No Order", NoOrderScheme()),
                          ("Soft Updates", SoftUpdatesScheme())]:
        # sweep a few crash instants; No Order usually breaks on one of them
        worst = None
        for crash_at in (1.0, 2.0, 3.0, 4.0, 5.0):
            report = crash_and_check(type(scheme)(), crash_at)
            if worst is None or len(report.errors) > len(worst.errors):
                worst = report
        print(f"{label:13s}: {worst.summary()}")
        for error in worst.errors[:4]:
            print(f"               ERROR   {error}")
        for warning in worst.warnings[:2]:
            print(f"               warning {warning}")
        print()

    print("Soft updates keeps every crash state fsck-consistent;")
    print("No Order leaves true integrity violations behind.")


if __name__ == "__main__":
    main()
