"""The ordering-scheme interface.

The file system performs every structural change on the *in-memory* state
first (in-core inodes, directory buffers, bitmaps), then hands control to the
mounted scheme at one of the four update points.  The scheme decides what to
write when -- synchronously, asynchronously with a flag or dependency list,
or not at all yet (delayed, with dependency records).

Buffer ownership contract: every held buffer passed to a hook is **consumed**
by the hook (released, or turned into a write which releases it per the
cache's block-copy rules).  In-core inodes are passed locked and stay locked.

The three ordering rules the hooks exist to uphold (paper, section 1):

1. never reset the old pointer to a resource before the new pointer has been
   set,
2. never re-use a resource before nullifying all previous pointers to it,
3. never point to a structure before it has been initialized.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Generator, Optional

from repro.faults import MediaError
from repro.ordering.guarantees import SAFE_DEFAULT, CrashGuarantees

if TYPE_CHECKING:
    from repro.cache.buffer import Buffer
    from repro.fs.inode import Inode
    from repro.fs.vfs import FileSystem


@dataclass
class AllocContext:
    """Everything a scheme needs to order one block/fragment allocation.

    ``owner_kind`` says where the new pointer lives: ``"inode"`` (a direct or
    indirect-root pointer in the in-core inode) or ``"indirect"`` (a slot in
    the held indirect-block buffer ``ibuf``).  ``old_daddr`` is nonzero when
    this allocation replaces a fragment run (extension by move), in which
    case the scheme must also order the old run's reuse (rule 2).
    ``is_metadata`` marks directory blocks and indirect blocks, whose
    initialization ordering is enforced by every scheme regardless of the
    allocation-initialization setting.
    """

    ip: "Inode"
    lblk: int
    owner_kind: str
    ibuf: Optional["Buffer"]
    slot: int
    new_daddr: int
    new_frags: int
    old_daddr: int
    old_frags: int
    data_buf: "Buffer"
    is_metadata: bool


class OrderingScheme:
    """Base class; concrete schemes override the hooks they order."""

    #: display name used by the harness
    name = "base"
    #: whether the machine should enable the -CB block-copy enhancement
    uses_block_copy = False
    #: enforce allocation initialization for regular file data (tables 1-2
    #: compare each scheme with this on and off; soft updates defaults on)
    alloc_init = False
    #: what a crash at an arbitrary instant may leave behind; verified by
    #: the crash-exploration engine, never assumed
    declared_guarantees: CrashGuarantees = SAFE_DEFAULT

    def __init__(self, alloc_init: Optional[bool] = None) -> None:
        if alloc_init is not None:
            self.alloc_init = alloc_init
        self.fs: "FileSystem" = None  # set by attach()
        self._obs = None  # set by attach() when the machine observes

    def attach(self, fs: "FileSystem") -> None:
        """Bind to the mounted file system (called once at mount)."""
        self.fs = fs
        self._obs = fs.engine.obs

    # -- observability helpers (no-ops when tracing is off) ---------------
    def _bump(self, name: str, amount=1) -> None:
        """Increment the registry counter *name* when tracing is on."""
        if self._obs is not None:
            self._obs.registry.counter(name).inc(amount)

    def _ordered_wait(self, gen: Generator, kind: str,
                      **info) -> Generator:
        """Run *gen* -- a blocking ordering write -- inside an
        ``ordering.<kind>`` span, counting ``ordering.<kind>``.

        This is how a scheme's *decision* (stall the process, tag a flag,
        link a chain) shows up on the timeline.  With tracing off the
        generator runs untouched.
        """
        obs = self._obs
        if obs is None:
            result = yield from gen
            return result
        obs.registry.counter(f"ordering.{kind}").inc()
        span = obs.tracer.begin(f"ordering.{kind}", "ordering",
                                args=info or None)
        try:
            result = yield from gen
        finally:
            obs.tracer.end(span)
        return result

    def _release_on_error(self, gen: Generator, *bufs) -> Generator:
        """Run *gen*, releasing held buffers if a media error escapes.

        The hooks' ownership contract says every held buffer is consumed;
        when an EIO from a nested read or synchronous write aborts a hook
        midway, the buffers it was still holding must not stay B_BUSY
        forever (any later getblk of them would deadlock).  The failed
        operation itself is already typed on the request/buffer -- this
        guard only keeps the cache live so the machine can degrade instead
        of wedge.
        """
        try:
            result = yield from gen
        except MediaError:
            for buf in bufs:
                if buf is not None and buf.busy and not buf.write_outstanding:
                    self.fs.cache.brelse(buf)
            raise
        return result

    @property
    def crash_guarantees(self) -> CrashGuarantees:
        """The effective declaration: allocation initialization (when on)
        closes the stale-data hole regardless of the scheme's static
        declaration (paper, section 1)."""
        declared = self.declared_guarantees
        if self.alloc_init and declared.allows_stale_data:
            return replace(declared, allows_stale_data=False)
        return declared

    # -- the four structural changes ------------------------------------
    def link_added(self, dp: "Inode", dbuf: "Buffer", offset: int,
                   ip: "Inode", new_inode: bool) -> Generator:
        """A directory entry for *ip* was placed in *dbuf* at *offset*.

        Must ensure the child's inode (initialized, link count raised)
        reaches stable storage before the directory entry does (rule 3 /
        rule 1).  Consumes *dbuf*.
        """
        raise NotImplementedError

    def dotdot_link_added(self, dp: "Inode", child_buf: "Buffer",
                          offset: int) -> Generator:
        """mkdir placed '..' (a link to existing *dp*) in the child's block.

        Unlike a link to a *new* inode, '..' points at an inode that is
        already initialized on disk, so rule 3 is not at stake -- only the
        parent's link count can transiently undercount (fsck-repairable).
        Default: order like a normal link addition.  Consumes *child_buf*.
        """
        yield from self.link_added(dp, child_buf, offset, dp, new_inode=False)

    def link_removed(self, dp: "Inode", dbuf: "Buffer", offset: int,
                     ip: "Inode") -> Generator:
        """The entry at *offset* (pointing at *ip*) was cleared in *dbuf*.

        Must ensure the directory block reaches stable storage before the
        inode's link count is decremented on disk (rule 1), and is
        responsible for eventually running ``fs.drop_link(ip)``.  Consumes
        *dbuf*.
        """
        raise NotImplementedError

    def block_allocated(self, ctx: AllocContext) -> Generator:
        """A block/fragment run was allocated (pointer already set in memory).

        Must enforce rule 3 (initialization before pointer) when
        ``ctx.is_metadata`` or ``self.alloc_init``, and rule 2 for
        ``ctx.old_daddr`` (the scheme frees the old run at the safe time).
        Consumes ``ctx.data_buf`` and ``ctx.ibuf``.
        """
        raise NotImplementedError

    def release_inode(self, ip: "Inode") -> Generator:
        """*ip*'s last link is gone: free its blocks and the inode itself.

        Must enforce rule 2: neither the blocks nor the inode slot may be
        reused before the on-disk pointers to them are nullified.
        """
        raise NotImplementedError

    def truncated(self, ip: "Inode", runs: list) -> Generator:
        """*ip* was truncated to zero: pointers already reset in core.

        Must enforce rule 2 for *runs* (the freed block runs): they may not
        be reused before the reset pointers reach stable storage.  Default:
        the conventional discipline (synchronous reset write, then free).
        """
        yield from self._ordered_wait(
            self.fs.flush_inode_sync(ip), "sync_stall", point="truncate")
        yield from self.fs.free_block_list(runs)

    # -- unordered update points -------------------------------------------
    def inode_updated(self, ip: "Inode") -> Generator:
        """Non-structural inode change (size, times, link count bump already
        ordered elsewhere).  Default: copy to the inode block, delayed write.
        """
        ibuf = yield from self.fs.load_inode_buf(ip.ino)
        self.fs.store_inode(ip, ibuf)
        self.fs.cache.bdwrite(ibuf)

    def data_written(self, ip: "Inode", buf: "Buffer") -> Generator:
        """Regular file data filled into *buf*.  Default: delayed write."""
        self.fs.cache.bdwrite(buf)
        return
        yield  # pragma: no cover - keeps this a generator

    def fsync(self, ip: "Inode") -> Generator:
        """Make *ip* (inode + data) durable before returning (SYNCIO)."""
        yield from self.fs.flush_file_data(ip)
        yield from self.fs.flush_inode_sync(ip)

    # -- lifecycle -------------------------------------------------------------
    def mounted(self) -> None:
        """Scheme-specific post-mount setup (timers, zero block, ...)."""

    def drain(self) -> Generator:
        """Complete all deferred work (overridden by soft updates)."""
        return
        yield  # pragma: no cover - keeps this a generator

    def pending_work(self) -> int:
        """Outstanding deferred work (soft updates); 0 for eager schemes."""
        return 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
