"""Deep block-mapping coverage: single and double indirect files."""

import pytest

from repro.fs.layout import FSGeometry
from tests.conftest import make_machine, run_user

#: a geometry with a tiny indirect fan-out would be ideal, but nindir is
#: block_size/4; instead use sparse writes to reach double-indirect range
GEO = FSGeometry(ipg=256, dfrags_per_cg=8192, ncg=2)


def make(scheme="softupdates"):
    return make_machine(scheme, geometry=GEO, cache_bytes=8 * 1024 * 1024)


class TestSparseFiles:
    def test_holes_read_as_zeros(self):
        m = make()
        bs = m.fs.geometry.block_size

        def user():
            handle = yield from m.fs.create("/sparse")
            handle.offset = 5 * bs  # leave blocks 0-4 as holes
            yield from m.fs.write(handle, b"tail")
            yield from m.fs.close(handle)
            full = yield from m.fs.read_file("/sparse")
            return full

        data = run_user(m, user())
        assert len(data) == 5 * GEO.block_size + 4
        assert data[:5 * GEO.block_size] == bytes(5 * GEO.block_size)
        assert data[-4:] == b"tail"

    def test_sparse_write_into_double_indirect_range(self):
        m = make()
        geo = m.fs.geometry
        bs = geo.block_size
        # first double-indirect logical block
        lblk = geo.NDADDR + geo.nindir

        def user():
            handle = yield from m.fs.create("/deep")
            handle.offset = lblk * bs
            yield from m.fs.write(handle, b"DEEP" * 256)
            yield from m.fs.close(handle)
            yield from m.fs.sync()
            handle = yield from m.fs.open("/deep")
            handle.offset = lblk * bs
            data = yield from m.fs.read(handle, 1024)
            yield from m.fs.close(handle)
            return data

        assert run_user(m, user(), max_events=50_000_000) == b"DEEP" * 256
        st = run_user(m, m.fs.stat("/deep"))
        assert st.dindirect != 0

    def test_double_indirect_file_unlink_frees_everything(self):
        m = make("conventional")
        geo = m.fs.geometry
        bs = geo.block_size
        lblk = geo.NDADDR + geo.nindir + 3
        before = sum(m.fs.allocator.cg_free_frags)

        def user():
            handle = yield from m.fs.create("/deep")
            handle.offset = lblk * bs
            yield from m.fs.write(handle, b"x")
            yield from m.fs.close(handle)
            yield from m.fs.unlink("/deep")
            yield from m.fs.sync()

        run_user(m, user(), max_events=50_000_000)
        assert sum(m.fs.allocator.cg_free_frags) == before

    def test_deep_file_survives_crash_recovery(self):
        m = make("softupdates")
        geo = m.fs.geometry
        lblk = geo.NDADDR + geo.nindir

        def user():
            handle = yield from m.fs.create("/deep")
            handle.offset = lblk * geo.block_size
            yield from m.fs.write(handle, b"safe")
            yield from m.fs.fsync(handle)
            yield from m.fs.close(handle)

        run_user(m, user(), max_events=50_000_000)
        from repro.integrity import crash_image, fsck
        report = fsck(crash_image(m), GEO)
        assert report.clean, report.errors[:3]

    def test_beyond_max_file_size_rejected(self):
        m = make()
        geo = m.fs.geometry

        def user():
            handle = yield from m.fs.create("/huge")
            handle.offset = geo.max_file_blocks * geo.block_size + 1
            yield from m.fs.write(handle, b"x")

        from repro.sim import ProcessCrashed
        with pytest.raises(ProcessCrashed, match="EFBIG"):
            run_user(m, user(), max_events=50_000_000)
