"""Soft updates dependency structures (paper appendix).

The paper's implementation uses a generic record with a type tag (11 types)
and type-specific values; we keep one small class per role, with the same
semantics:

* :class:`AllocDep` -- ``allocdirect`` / ``allocindirect``: a new block
  pointer that must not reach the disk before the pointed-to block is
  initialized.  Its ``allocsafe`` half is the entry in the manager's
  by-data-block index that marks it satisfied on the block's first write.
* :class:`DirAdd` -- ``add``/``addsafe``: a new directory entry that must
  not reach the disk before the pointed-to inode does.
* :class:`DirRem` -- ``remove``: a cleared entry whose inode link count may
  only drop after the cleared block is on disk.
* :class:`FreeWork` -- ``freeblocks``/``freefile``: resources whose bitmap
  bits may only clear after the reset pointers are on disk.
* :class:`InodeDepState`, :class:`PageDepState`, :class:`IndirDepState` --
  the "organizational" structures: per-inode-block, per-directory-block and
  per-indirect-block anchors holding the records above, plus the in-flight
  batches snapshotted at each write issue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

#: byte offsets inside the packed 128-byte dinode (see layout._DINODE_FMT)
DINODE_SIZE_AT = 8
DINODE_DIRECT_AT = 28
DINODE_SINDIRECT_SLOT = 12
DINODE_DINDIRECT_SLOT = 13
DINODE_SINDIRECT_AT = 76
DINODE_DINDIRECT_AT = 80


def dinode_slot_offset(slot: int) -> int:
    """Byte offset of pointer *slot* (0-11 direct, 12 single, 13 double)."""
    if 0 <= slot < 12:
        return DINODE_DIRECT_AT + 4 * slot
    if slot == DINODE_SINDIRECT_SLOT:
        return DINODE_SINDIRECT_AT
    if slot == DINODE_DINDIRECT_SLOT:
        return DINODE_DINDIRECT_AT
    raise ValueError(f"bad dinode pointer slot {slot}")


@dataclass
class AllocDep:
    """allocdirect / allocindirect (+ its allocsafe registration)."""

    #: ("inode", ino) or ("indir", indirect daddr)
    owner: tuple
    slot: int
    new_daddr: int
    old_daddr: int
    #: file size to roll back to while unsatisfied (None: leave size alone)
    old_size: Optional[int]
    #: the data block is initialized on disk
    satisfied: bool = False
    #: runs to free once this dep clears (fragment extension by move)
    free_on_clear: list[tuple[int, int]] = field(default_factory=list)


@dataclass
class DirAdd:
    """add/addsafe: entry at *offset* (block-relative) pointing at *ino*."""

    dir_daddr: int
    offset: int
    ino: int
    #: the pointed-to inode has reached stable storage since this add
    inode_written: bool = False


@dataclass
class DirRem:
    """remove: once the cleared block is written, drop *ip*'s link."""

    ip: object  # Inode; kept loose to avoid an import cycle


@dataclass
class FreeWork:
    """freeblocks/freefile: bitmap releases gated on the inode reset write."""

    runs: list[tuple[int, int]]
    ino: Optional[int]


@dataclass
class InodeDepState:
    """Anchor for one inode's dependencies (paper: inodedep)."""

    ino: int
    alloc: dict[int, AllocDep] = field(default_factory=dict)
    pending_adds: list[DirAdd] = field(default_factory=list)
    frees: list[FreeWork] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.alloc or self.pending_adds or self.frees)


@dataclass
class PageDepState:
    """Anchor for one directory block's dependencies (paper: pagedep)."""

    daddr: int
    adds: dict[int, DirAdd] = field(default_factory=dict)
    removes: list[DirRem] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.adds or self.removes)


@dataclass
class IndirDepState:
    """Anchor for one indirect block's dependencies (paper: indirdep)."""

    daddr: int
    alloc: dict[int, AllocDep] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not self.alloc


@dataclass
class InFlight:
    """What one issued disk write of a tracked buffer carried.

    ``removes`` and ``frees`` are *moved out* of their live anchors at
    write issue (the write is what makes them safe to act on), so a failed
    write must requeue them; ``frees`` entries keep their owning inode
    number for exactly that purpose.  The other lists only reference
    records that stay on their anchors until completion retires them.
    """

    adds_intact: list[DirAdd] = field(default_factory=list)
    removes: list[DirRem] = field(default_factory=list)
    alloc_written: list[AllocDep] = field(default_factory=list)
    #: (owner inode number, free work) pairs
    frees: list[tuple[int, FreeWork]] = field(default_factory=list)
    adds_for_inodes: list[DirAdd] = field(default_factory=list)
    rolled_back: bool = False


@dataclass
class TrackedBuffer:
    """Per-buffer bookkeeping: pinned + standing hooks + in-flight queue."""

    daddr: int
    kind: str  # "inode" | "dir" | "indir" | "data"
    inflight: deque = field(default_factory=deque)
    buf: object = None
    pre_fn: object = None
    post_fn: object = None
