"""Synchronisation primitives built on events.

These mirror the kernel facilities the paper's code relies on: sleep/wakeup
channels (:class:`WaitQueue`), mutual exclusion (:class:`Lock`), counted
resources (:class:`Semaphore`) and producer/consumer queues
(:class:`FIFOQueue`).  All wakeups are FIFO, matching classic UNIX semantics
closely enough for performance modelling.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.sim.engine import Engine
from repro.sim.events import Event


class WaitQueue:
    """A sleep/wakeup channel (the moral equivalent of ``sleep()``/``wakeup()``).

    Processes ``yield wq.wait()``; ``broadcast()`` wakes all current sleepers,
    ``signal()`` wakes the oldest one.  There is no predicate re-check built
    in; callers loop, exactly like kernel code::

        while buf.busy:
            yield buf.unbusy.wait()
    """

    __slots__ = ("engine", "_waiters")

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._waiters: deque[Event] = deque()

    def wait(self) -> Event:
        """Return an event that fires at the next signal/broadcast."""
        event = Event(self.engine)
        self._waiters.append(event)
        return event

    def signal(self, value: Any = None) -> bool:
        """Wake the oldest sleeper.  Returns False if nobody was waiting."""
        if not self._waiters:
            return False
        self._waiters.popleft().succeed(value)
        return True

    def broadcast(self, value: Any = None) -> int:
        """Wake every current sleeper; returns the number woken."""
        count = len(self._waiters)
        while self._waiters:
            self._waiters.popleft().succeed(value)
        return count

    def __len__(self) -> int:
        return len(self._waiters)


class Lock:
    """A FIFO mutex.

    Usage from a process::

        yield lock.acquire()
        try:
            ...
        finally:
            lock.release()

    or, with the generator helper::

        yield from lock.holding(critical_section())
    """

    __slots__ = ("engine", "_locked", "_waiters", "owner")

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._locked = False
        self._waiters: deque[Event] = deque()
        #: for debugging: the process holding the lock
        self.owner = None

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        """Return an event that fires when the caller holds the lock."""
        event = Event(self.engine)
        if not self._locked:
            self._locked = True
            self.owner = self.engine.current_process
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release; ownership passes immediately to the oldest waiter."""
        if not self._locked:
            raise RuntimeError("release() of an unlocked Lock")
        if self._waiters:
            # Hand off: the lock stays locked, the waiter becomes the owner
            # when its acquire event is processed.
            event = self._waiters.popleft()
            self.owner = None
            event.succeed()
        else:
            self._locked = False
            self.owner = None

    def holding(self, body: Generator) -> Generator:
        """Run generator *body* while holding the lock (released on exit)."""
        yield self.acquire()
        try:
            result = yield from body
        finally:
            self.release()
        return result


class Semaphore:
    """A counted resource with FIFO granting."""

    __slots__ = ("engine", "_count", "_waiters")

    def __init__(self, engine: Engine, count: int) -> None:
        if count < 0:
            raise ValueError("semaphore count must be non-negative")
        self.engine = engine
        self._count = count
        self._waiters: deque[Event] = deque()

    @property
    def available(self) -> int:
        return self._count

    def acquire(self) -> Event:
        event = Event(self.engine)
        if self._count > 0 and not self._waiters:
            self._count -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._count += 1


class FIFOQueue:
    """An unbounded producer/consumer queue of items.

    ``put()`` never blocks; ``yield q.get()`` blocks until an item is
    available and resumes with the item.
    """

    __slots__ = ("engine", "_items", "_getters")

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.engine)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
