"""The paper's workloads, rebuilt.

* :mod:`trees` -- deterministic synthetic directory trees standing in for
  the 535-file / 14.3 MB home-directory tree of section 2.
* :mod:`copybench` -- the N-user copy and N-user remove benchmarks.
* :mod:`microbench` -- figure 5's 1 KB file create / remove / create+remove
  throughput benchmarks.
* :mod:`andrew` -- the 5-phase Andrew benchmark of table 3.
* :mod:`sdet` -- the Sdet-like software-development script workload of
  figure 6.
* :mod:`churn` -- seeded metadata-churn generators for crash exploration
  (not a paper benchmark; built to keep ordered updates in flight).

Every workload is expressed as generator functions run as simulated user
processes on a :class:`~repro.machine.Machine`.
"""

from repro.workloads.churn import churn_workload, microbench_churn
from repro.workloads.trees import TreeSpec, tree_layout, build_tree
from repro.workloads.copybench import (
    copy_tree_user,
    populate_sources,
    remove_tree_user,
)
from repro.workloads.microbench import MicrobenchResult, run_microbench
from repro.workloads.andrew import AndrewResult, run_andrew
from repro.workloads.sdet import SdetResult, run_sdet

__all__ = [
    "AndrewResult",
    "MicrobenchResult",
    "SdetResult",
    "TreeSpec",
    "build_tree",
    "churn_workload",
    "copy_tree_user",
    "microbench_churn",
    "populate_sources",
    "remove_tree_user",
    "run_andrew",
    "run_microbench",
    "run_sdet",
    "tree_layout",
]
