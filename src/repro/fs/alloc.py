"""Cylinder groups and the block/fragment/inode allocator.

The cylinder-group header block holds the group's counters and two bitmaps
(inodes, data fragments); :class:`CgView` edits those bytes in place inside
the header's cache buffer, so every allocation is a real metadata update
flowing through the buffer cache -- and therefore through whatever ordering
scheme is mounted.

Policies (simplified FFS):

* new directories go to the cylinder group with the most free inodes,
* files get inodes in their parent directory's group,
* data is allocated in the owning inode's group, falling back to the
  globally emptiest group,
* small files end in a fragment run; growing past it first tries in-place
  extension, then moves the data to a larger run (generating the
  deallocation-dependency special case the paper's appendix discusses).

Bitmap writes themselves are always *delayed*: a stale bitmap is repairable
by fsck in both directions (leak, or referenced-but-free), which is why none
of the paper's schemes order bitmap writes -- they order the pointer writes
around them.
"""

from __future__ import annotations

import struct
from typing import Generator, Optional

from repro.cache.buffercache import BufferCache
from repro.fs.layout import FSGeometry

CG_MAGIC = 0xC6C6C6C6
_CG_HDR_FMT = "<IIII"
_CG_BITMAPS_AT = 64


def _first_free_run_in_byte(byte: int, count: int) -> int:
    """Offset of the first run of *count* clear bits in *byte*, or -1."""
    run = 0
    for bit in range(8):
        if byte & (1 << bit):
            run = 0
        else:
            run += 1
            if run == count:
                return bit - count + 1
    return -1


#: FIRST_RUN[byte][count-1] -> first offset of a free run of `count`, or -1
_FIRST_RUN = [[_first_free_run_in_byte(byte, count) for count in range(1, 9)]
              for byte in range(256)]

#: RUN_MATCH[count-1]: 256-entry translate table mapping a bitmap byte to
#: 1 iff it is *partially* used (not fully free) and holds a free run of
#: `count` -- bytes.translate + find then scan whole bitmaps at C speed
_RUN_MATCH = [bytes(1 if (byte and _FIRST_RUN[byte][slot] >= 0) else 0
                    for byte in range(256))
              for slot in range(8)]


class CgView:
    """Byte-level view of one cylinder-group header block."""

    def __init__(self, data: bytearray, geometry: FSGeometry) -> None:
        self.data = data
        self.geometry = geometry
        self._ibm_at = _CG_BITMAPS_AT
        self._fbm_at = _CG_BITMAPS_AT + (geometry.ipg + 7) // 8

    # -- header ------------------------------------------------------------
    @classmethod
    def initialize(cls, data: bytearray, index: int,
                   geometry: FSGeometry) -> "CgView":
        struct.pack_into(_CG_HDR_FMT, data, 0, CG_MAGIC, index,
                         geometry.ipg, geometry.dfrags_per_cg)
        return cls(data, geometry)

    @property
    def magic(self) -> int:
        return struct.unpack_from("<I", self.data, 0)[0]

    @property
    def index(self) -> int:
        return struct.unpack_from("<I", self.data, 4)[0]

    @property
    def free_inodes(self) -> int:
        return struct.unpack_from("<I", self.data, 8)[0]

    @free_inodes.setter
    def free_inodes(self, value: int) -> None:
        struct.pack_into("<I", self.data, 8, value)

    @property
    def free_frags(self) -> int:
        return struct.unpack_from("<I", self.data, 12)[0]

    @free_frags.setter
    def free_frags(self, value: int) -> None:
        struct.pack_into("<I", self.data, 12, value)

    # -- bit primitives -------------------------------------------------------
    def _get(self, base: int, index: int) -> bool:
        return bool(self.data[base + index // 8] & (1 << (index % 8)))

    def _set(self, base: int, index: int, used: bool) -> None:
        if used:
            self.data[base + index // 8] |= 1 << (index % 8)
        else:
            self.data[base + index // 8] &= ~(1 << (index % 8)) & 0xFF

    # -- inode bitmap -----------------------------------------------------------
    def inode_used(self, index: int) -> bool:
        self._check(index, self.geometry.ipg)
        return self._get(self._ibm_at, index)

    def set_inode(self, index: int, used: bool) -> None:
        self._check(index, self.geometry.ipg)
        if self._get(self._ibm_at, index) == used:
            raise RuntimeError(
                f"inode bit {index} already {'set' if used else 'clear'}")
        self._set(self._ibm_at, index, used)
        self.free_inodes += -1 if used else 1

    def find_free_inode(self, start: int = 0) -> Optional[int]:
        ipg = self.geometry.ipg
        for offset in range(ipg):
            index = (start + offset) % ipg
            if not self._get(self._ibm_at, index):
                return index
        return None

    # -- fragment bitmap -----------------------------------------------------
    def frag_used(self, index: int) -> bool:
        self._check(index, self.geometry.dfrags_per_cg)
        return self._get(self._fbm_at, index)

    def set_frags(self, index: int, count: int, used: bool) -> None:
        for i in range(index, index + count):
            self._check(i, self.geometry.dfrags_per_cg)
            if self._get(self._fbm_at, i) == used:
                raise RuntimeError(
                    f"frag bit {i} already {'set' if used else 'clear'}")
            self._set(self._fbm_at, i, used)
        self.free_frags += -count if used else count

    def run_free(self, index: int, count: int) -> bool:
        limit = self.geometry.dfrags_per_cg
        if index < 0 or index + count > limit:
            return False
        return all(not self._get(self._fbm_at, i)
                   for i in range(index, index + count))

    def find_block(self, rotor: int = 0) -> Optional[int]:
        """Index of a free, block-aligned run of a whole block's fragments."""
        fpb = self.geometry.frags_per_block
        nblocks = self.geometry.dfrags_per_cg // fpb
        start_block = (rotor // fpb) % nblocks
        if fpb == 8:
            # one bitmap byte per block: let bytes.find do the scanning
            view = bytes(self.data[self._fbm_at:self._fbm_at + nblocks])
            at = view.find(0, start_block)
            if at < 0:
                at = view.find(0, 0, start_block)
            return at * fpb if at >= 0 else None
        for offset in range(nblocks):
            block = (start_block + offset) % nblocks
            index = block * fpb
            if self.run_free(index, fpb):
                return index
        return None

    def find_frag_run(self, count: int, rotor: int = 0) -> Optional[int]:
        """Index of a free run of *count* frags inside one block.

        Prefers partially-used blocks (FFS keeps full blocks for full-block
        allocations) and falls back to carving the front of a free block.
        """
        fpb = self.geometry.frags_per_block
        nblocks = self.geometry.dfrags_per_cg // fpb
        start_block = (rotor // fpb) % nblocks
        if fpb == 8:
            # one bitmap byte per block.  A partially-used block with a
            # fitting run anywhere in the rotation beats the fallback (the
            # first fully-free block in rotation order), so scan for the
            # partial match first -- both scans are C-speed find()s over
            # the translated byte map
            slot = count - 1
            view = bytes(self.data[self._fbm_at:self._fbm_at + nblocks])
            match = view.translate(_RUN_MATCH[slot])
            at = match.find(1, start_block)
            if at < 0:
                at = match.find(1, 0, start_block)
            if at >= 0:
                return at * 8 + _FIRST_RUN[view[at]][slot]
            free = view.find(0, start_block)
            if free < 0:
                free = view.find(0, 0, start_block)
            return free * 8 if free >= 0 else None
        fallback = None
        for offset in range(nblocks):
            block = (start_block + offset) % nblocks
            base = block * fpb
            free_in_block = sum(not self._get(self._fbm_at, base + i)
                                for i in range(fpb))
            if free_in_block < count:
                continue
            if free_in_block == fpb:
                if fallback is None:
                    fallback = base
                continue
            run = self._first_run(base, count)
            if run is not None:
                return run
        return fallback

    def _first_run(self, block_base: int, count: int) -> Optional[int]:
        fpb = self.geometry.frags_per_block
        run = 0
        for i in range(fpb):
            if self._get(self._fbm_at, block_base + i):
                run = 0
            else:
                run += 1
                if run == count:
                    return block_base + i - count + 1
        return None

    def _check(self, index: int, limit: int) -> None:
        if not (0 <= index < limit):
            raise ValueError(f"bitmap index {index} out of range (<{limit})")


class Allocator:
    """Allocation front-end working through the buffer cache.

    All methods are simulated-process subroutines (``yield from``).  Bitmap
    buffers are released with delayed writes; ordering around allocation and
    deallocation is the mounted scheme's job.
    """

    def __init__(self, geometry: FSGeometry, cache: BufferCache) -> None:
        self.geometry = geometry
        self.cache = cache
        # in-memory summaries (rebuilt at mount); advisory, like FFS csum
        self.cg_free_inodes = [0] * geometry.ncg
        self.cg_free_frags = [0] * geometry.ncg
        self._rotor = [0] * geometry.ncg

    # -- header access -------------------------------------------------------
    def _cg_buf(self, cg: int) -> Generator:
        buf = yield from self.cache.bread(self.geometry.cg_base(cg),
                                          self.geometry.block_size)
        return buf

    def load_summaries(self) -> Generator:
        """Rebuild the in-memory free counts from the on-disk headers."""
        for cg in range(self.geometry.ncg):
            buf = yield from self._cg_buf(cg)
            view = CgView(buf.data, self.geometry)
            if view.magic != CG_MAGIC:
                self.cache.brelse(buf)
                raise RuntimeError(f"bad cylinder group magic in cg {cg}")
            self.cg_free_inodes[cg] = view.free_inodes
            self.cg_free_frags[cg] = view.free_frags
            self.cache.brelse(buf)

    # -- inode allocation -----------------------------------------------------
    def alloc_inode(self, hint_cg: int, for_directory: bool) -> Generator:
        """Allocate an inode; returns its number."""
        cg = self._pick_inode_cg(hint_cg, for_directory)
        if cg is None:
            raise OutOfSpace("no free inodes")
        buf = yield from self._cg_buf(cg)
        view = CgView(buf.data, self.geometry)
        index = view.find_free_inode(start=self._rotor[cg] % self.geometry.ipg)
        if index is None:
            self.cache.brelse(buf)
            raise OutOfSpace(f"cg {cg} summary said free inodes but none found")
        ino = cg * self.geometry.ipg + index
        if ino < 3:
            # never hand out inodes 0..2 (unused markers and root)
            view.set_inode(index, True)  # burn it permanently
            self.cg_free_inodes[cg] -= 1
            self.cache.bdwrite(buf)
            result = yield from self.alloc_inode(hint_cg, for_directory)
            return result
        view.set_inode(index, True)
        self.cg_free_inodes[cg] -= 1
        self.cache.bdwrite(buf)
        return ino

    def free_inode(self, ino: int) -> Generator:
        cg = self.geometry.cg_of_inode(ino)
        buf = yield from self._cg_buf(cg)
        view = CgView(buf.data, self.geometry)
        view.set_inode(ino % self.geometry.ipg, False)
        self.cg_free_inodes[cg] += 1
        self.cache.bdwrite(buf)

    # -- fragment/block allocation ------------------------------------------
    def alloc_block(self, hint_cg: int) -> Generator:
        """Allocate a full block; returns its fragment daddr."""
        daddr = yield from self.alloc_frags(hint_cg,
                                            self.geometry.frags_per_block)
        return daddr

    def alloc_frags(self, hint_cg: int, count: int) -> Generator:
        """Allocate a run of *count* fragments within one block."""
        fpb = self.geometry.frags_per_block
        if not (1 <= count <= fpb):
            raise ValueError(f"fragment run of {count} (block is {fpb})")
        cg = self._pick_data_cg(hint_cg, count)
        if cg is None:
            raise OutOfSpace("file system data area full")
        buf = yield from self._cg_buf(cg)
        view = CgView(buf.data, self.geometry)
        if count == fpb:
            index = view.find_block(self._rotor[cg])
        else:
            index = view.find_frag_run(count, self._rotor[cg])
        if index is None:
            self.cache.brelse(buf)
            raise OutOfSpace(f"cg {cg} cannot satisfy a run of {count}")
        view.set_frags(index, count, True)
        self.cg_free_frags[cg] -= count
        self._rotor[cg] = index + count
        self.cache.bdwrite(buf)
        return self.geometry.cg_data_start(cg) + index

    def try_extend_frags(self, daddr: int, old_count: int,
                         new_count: int) -> Generator:
        """Extend a fragment run in place.  Returns True on success."""
        if new_count <= old_count:
            raise ValueError("extension must grow the run")
        fpb = self.geometry.frags_per_block
        cg = self.geometry.cg_of_daddr(daddr)
        index = self.geometry.data_index(daddr)
        if (index % fpb) + new_count > fpb:
            return False  # would cross the block boundary
        buf = yield from self._cg_buf(cg)
        view = CgView(buf.data, self.geometry)
        grow = new_count - old_count
        if not view.run_free(index + old_count, grow):
            self.cache.brelse(buf)
            return False
        view.set_frags(index + old_count, grow, True)
        self.cg_free_frags[cg] -= grow
        self.cache.bdwrite(buf)
        return True

    def free_frags(self, daddr: int, count: int) -> Generator:
        """Return a fragment run to the free pool (bitmap update, delayed)."""
        cg = self.geometry.cg_of_daddr(daddr)
        index = self.geometry.data_index(daddr)
        buf = yield from self._cg_buf(cg)
        view = CgView(buf.data, self.geometry)
        view.set_frags(index, count, False)
        self.cg_free_frags[cg] += count
        self.cache.bdwrite(buf)

    # -- placement policies ----------------------------------------------------
    def _pick_inode_cg(self, hint: int, for_directory: bool) -> Optional[int]:
        if for_directory:
            best = max(range(self.geometry.ncg),
                       key=lambda cg: self.cg_free_inodes[cg])
            return best if self.cg_free_inodes[best] > 0 else None
        if self.cg_free_inodes[hint] > 0:
            return hint
        for cg in range(self.geometry.ncg):
            if self.cg_free_inodes[cg] > 0:
                return cg
        return None

    def _pick_data_cg(self, hint: int, count: int) -> Optional[int]:
        if self.cg_free_frags[hint] >= count:
            return hint
        candidates = [cg for cg in range(self.geometry.ncg)
                      if self.cg_free_frags[cg] >= count]
        if not candidates:
            return None
        return max(candidates, key=lambda cg: self.cg_free_frags[cg])


class OutOfSpace(Exception):
    """The file system cannot satisfy an allocation."""
